package filemig_test

// Keeps docs/experiments.md honest: the worked example's spec block is
// executed and its shown output compared byte for byte, so the document
// cannot drift from the code.

import (
	"os"
	"strings"
	"testing"

	"filemig"
	"filemig/internal/experiment"
)

// docFence extracts the first fenced code block following the given
// <!-- test:... --> marker.
func docFence(t *testing.T, doc, marker string) string {
	t.Helper()
	_, rest, ok := strings.Cut(doc, marker)
	if !ok {
		t.Fatalf("docs/experiments.md lost its %s marker", marker)
	}
	_, rest, ok = strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("no code fence after %s", marker)
	}
	// Drop the info string ("json") on the opening fence line.
	if i := strings.IndexByte(rest, '\n'); i >= 0 {
		rest = rest[i+1:]
	}
	body, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("unterminated code fence after %s", marker)
	}
	return body
}

func TestDocsWorkedExample(t *testing.T) {
	raw, err := os.ReadFile("docs/experiments.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	spec, err := experiment.Parse(strings.NewReader(docFence(t, doc, "<!-- test:spec -->")))
	if err != nil {
		t.Fatalf("worked example spec does not parse: %v", err)
	}
	m, err := filemig.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(filemig.RenderExperiment(m), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:output -->"), "\n")
	if got != want {
		t.Errorf("docs/experiments.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}
