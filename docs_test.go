package filemig_test

// Keeps the worked examples in docs/ honest: each document's example is
// executed and its shown output compared byte for byte, so the docs
// cannot drift from the code.

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"filemig"
	"filemig/internal/experiment"
	"filemig/internal/trace"
)

// docFence extracts the first fenced code block following the given
// <!-- test:... --> marker.
func docFence(t *testing.T, doc, marker string) string {
	t.Helper()
	_, rest, ok := strings.Cut(doc, marker)
	if !ok {
		t.Fatalf("the document lost its %s marker", marker)
	}
	_, rest, ok = strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("no code fence after %s", marker)
	}
	// Drop the info string ("json") on the opening fence line.
	if i := strings.IndexByte(rest, '\n'); i >= 0 {
		rest = rest[i+1:]
	}
	body, _, ok := strings.Cut(rest, "```")
	if !ok {
		t.Fatalf("unterminated code fence after %s", marker)
	}
	return body
}

func TestDocsWorkedExample(t *testing.T) {
	raw, err := os.ReadFile("docs/experiments.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	spec, err := experiment.Parse(strings.NewReader(docFence(t, doc, "<!-- test:spec -->")))
	if err != nil {
		t.Fatalf("worked example spec does not parse: %v", err)
	}
	m, err := filemig.RunExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(filemig.RenderExperiment(m), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:output -->"), "\n")
	if got != want {
		t.Errorf("docs/experiments.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}

// TestDocsSnapshotExample executes docs/snapshots.md's worked
// distributed merge through the facade — the same workload, split,
// snapshotted twice, merged — and compares the documented Table 4
// byte for byte.
func TestDocsSnapshotExample(t *testing.T) {
	raw, err := os.ReadFile("docs/snapshots.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)

	p, err := filemig.Run(filemig.Config{Scale: 0.001, Seed: 3, Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(p.Records) / 2
	var snaps [2]bytes.Buffer
	for i, recs := range [][]trace.Record{p.Records[:cut], p.Records[cut:]} {
		var enc bytes.Buffer
		if err := trace.WriteAllFormat(&enc, recs, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if err := filemig.SaveSnapshot(&snaps[i], &enc); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := filemig.MergeSnapshots(&snaps[0], &snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	e, ok := filemig.FindExperiment("table4")
	if !ok {
		t.Fatal("table4 experiment missing")
	}
	got := strings.TrimRight(e.Render(merged), "\n")
	want := strings.TrimRight(docFence(t, doc, "<!-- test:snapshot-output -->"), "\n")
	if got != want {
		t.Errorf("docs/snapshots.md worked example is stale.\n--- documented ---\n%s\n--- actual ---\n%s",
			want, got)
	}
}
