// Periodicity: reproduce the paper's first finding (§1, §5.2) — MSS
// requests are periodic with one-day and one-week periods, and the
// periodicity comes from the human-driven reads, not the machine-driven
// writes. Demonstrated with both the periodogram and the autocorrelation
// function, with and without the rhythm machinery (ablation).
package main

import (
	"fmt"
	"log"

	"filemig"
	"filemig/internal/stats"
)

func main() {
	log.SetFlags(0)
	p, err := filemig.Run(filemig.Config{Scale: 0.01, Seed: 7, SkipSimulation: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("dominant periods of the total request stream (hours):",
		fmtPeriods(p.Report.DominantPeriods(5)))

	// Split by op: reads carry the rhythm, writes do not.
	readPeriods := stats.DominantPeriods(p.Report.HourlyReads, 2, 0.15)
	fmt.Println("dominant periods of reads alone (hours):           ", fmtPeriods(readPeriods))

	writes := make([]float64, len(p.Report.HourlyRequests))
	for i := range writes {
		writes[i] = p.Report.HourlyRequests[i] - p.Report.HourlyReads[i]
	}
	// Writes are flat: their daily spectral peak should be far weaker
	// than the reads'. Compare power at the 24h component.
	readPower := powerAt(p.Report.HourlyReads, 24)
	writePower := powerAt(writes, 24)
	fmt.Printf("spectral power at the 24h period: reads %.0f, writes %.0f (%.0fx)\n",
		readPower, writePower, readPower/writePower)

	ac := p.Report.ReadAutocorrelation(24 * 8)
	fmt.Printf("read autocorrelation at lag 24h: %.2f, at lag 168h: %.2f\n", ac[24], ac[168])
}

func fmtPeriods(ps []float64) string {
	out := ""
	for i, v := range ps {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%.0f", v)
	}
	return out
}

func powerAt(series []float64, period float64) float64 {
	best := 0.0
	for _, pt := range stats.Periodogram(stats.Detrend(series)) {
		if pt.Period > period*0.9 && pt.Period < period*1.1 && pt.Power > best {
			best = pt.Power
		}
	}
	return best
}
