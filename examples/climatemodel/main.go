// Climate model: the paper's motivating batch workload (§3.3). A
// Community Climate Model run computes for an hour, writes ~500 MB of
// history split into ≤200 MB MSS files, and the scientist replays the
// results as a "movie" the next morning. This example shows the two §6
// optimisations on exactly that pattern:
//
//  1. eager write-behind — the batch job stops waiting for tape;
//  2. directory prefetch — reading day 1 stages day 2, so the movie
//     doesn't stall on every file.
package main

import (
	"fmt"
	"log"
	"time"

	"filemig/internal/device"
	"filemig/internal/migration"
	"filemig/internal/mss"
	"filemig/internal/trace"
	"filemig/internal/units"
)

const (
	runs       = 12 // overnight model runs
	daysPerRun = 10 // history files per run
	fileSize   = units.Bytes(50 * units.MB)
)

// buildTrace lays out the §3.3 pattern: each run writes its history files
// at night; the next morning the scientist plays them back in order.
func buildTrace() []trace.Record {
	var recs []trace.Record
	base := trace.Epoch
	for run := 0; run < runs; run++ {
		night := base.Add(time.Duration(run*24+2) * time.Hour) // 2 AM batch
		for d := 0; d < daysPerRun; d++ {
			recs = append(recs, trace.Record{
				Start: night.Add(time.Duration(d) * 90 * time.Second),
				Op:    trace.Write, Device: device.ClassSiloTape, Size: fileSize,
				MSSPath:   fmt.Sprintf("/mss/ccm/run%d/day%d", run, d),
				LocalPath: fmt.Sprintf("/usr/tmp/ccm/run%d.day%d", run, d),
				UserID:    100,
			})
		}
		morning := base.Add(time.Duration(run*24+9) * time.Hour) // 9 AM replay
		for d := 0; d < daysPerRun; d++ {
			recs = append(recs, trace.Record{
				Start: morning.Add(time.Duration(d) * 60 * time.Second),
				Op:    trace.Read, Device: device.ClassSiloTape, Size: fileSize,
				MSSPath:   fmt.Sprintf("/mss/ccm/run%d/day%d", run, d),
				LocalPath: fmt.Sprintf("/usr/tmp/ccm/run%d.day%d", run, d),
				UserID:    100,
			})
		}
	}
	return recs
}

func main() {
	log.SetFlags(0)
	recs := buildTrace()
	fmt.Printf("climate-model trace: %d runs x %d files of %s (writes at 2AM, replay at 9AM)\n\n",
		runs, daysPerRun, fileSize)

	// Experiment 1: write-behind. Compare user-visible write latency.
	for _, wb := range []bool{false, true} {
		cfg := mss.DefaultConfig(3)
		cfg.WriteBehind = wb
		sim := mss.NewSimulator(cfg)
		out, err := sim.Replay(recs)
		if err != nil {
			log.Fatal(err)
		}
		var wSum, rSum time.Duration
		var wN, rN int
		for _, r := range out {
			if r.Op == trace.Write {
				wSum += r.Startup
				wN++
			} else {
				rSum += r.Startup
				rN++
			}
		}
		fmt.Printf("write-behind=%-5v  mean write startup %6.1fs   mean read startup %6.1fs\n",
			wb, wSum.Seconds()/float64(wN), rSum.Seconds()/float64(rN))
	}

	// Experiment 2: prefetch during the morning movie. The user's scratch
	// partition (§3.3: a few hundred MB) holds only three history files,
	// so the sequential replay misses constantly; prefetching the next
	// file of the run directory overlaps the fetches.
	accs := migration.AccessesFromRecords(recs)
	capacity := units.Bytes(150 * units.MB)
	plain, err := migration.NewCache(migration.CacheConfig{Capacity: capacity, Policy: migration.LRU{}})
	if err != nil {
		log.Fatal(err)
	}
	plainRes := plain.Replay(accs)
	pre, err := migration.NewCache(migration.CacheConfig{
		Capacity: capacity, Policy: migration.LRU{},
		Prefetch: migration.NewDirPrefetcher(accs, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	preRes := pre.Replay(accs)
	fmt.Printf("\nmovie replay through a %s Cray cache:\n", capacity)
	fmt.Printf("  no prefetch:   %3d read misses of %d reads\n", plainRes.ReadMisses, plainRes.Reads)
	fmt.Printf("  dir prefetch:  %3d read misses (%d prefetch hits)\n",
		preRes.ReadMisses, preRes.PrefetchHits)
}
