// Capacity planning: how much staging disk does the Cray need in front of
// the tape archive? Replays the reference string against caches of 0.5%
// to 10% of the referenced data under each migration policy — the
// experiment behind §2.3's observation that with STP a disk holding ~1.5%
// of the tertiary store kept the miss ratio near 1%, costing only a few
// person-minutes per day.
package main

import (
	"fmt"
	"log"

	"filemig"
	"filemig/internal/migration"
	"filemig/internal/units"
)

func main() {
	log.SetFlags(0)
	p, err := filemig.Run(filemig.Config{Scale: 0.01, Seed: 11, SkipSimulation: true})
	if err != nil {
		log.Fatal(err)
	}
	accs := p.Accesses()
	total := migration.TotalReferencedBytes(accs)
	days := float64(p.Workload.Config.Days)
	fmt.Printf("reference string: %d accesses, %s of distinct data\n\n", len(accs), total)

	// The whole policies × capacities cross product fans out over one
	// worker pool; each cell is an independent, deterministic replay.
	fractions := []float64{0.005, 0.01, 0.015, 0.02, 0.05, 0.10}
	sweeps, err := migration.MultiPolicySweep(accs, fractions, []func() migration.Policy{
		func() migration.Policy { return migration.STP{K: 1.4} },
		func() migration.Policy { return migration.LRU{} },
		func() migration.Policy { return migration.LargestFirst{} },
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(filemig.RenderMultiSweep(sweeps, days))

	// The §6 size-split ablation: how much cache does it take before the
	// big files stop churning everything out? Report the capacity where
	// STP's miss ratio first drops under 10%.
	for _, pt := range sweeps[0].Points {
		if pt.Result.MissRatio() < 0.10 {
			fmt.Printf("STP^1.4 reaches <10%% miss ratio at %.1f%% of the store (%s)\n",
				100*pt.CapacityFraction,
				units.Bytes(float64(total)*pt.CapacityFraction))
			return
		}
	}
	fmt.Println("STP^1.4 never reached a 10% miss ratio in the swept range")
}
