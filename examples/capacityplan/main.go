// Capacity planning: how much staging disk does the Cray need in front of
// the tape archive? The experiment behind §2.3's observation that with
// STP a disk holding ~1.5% of the tertiary store kept the miss ratio
// near 1%, costing only a few person-minutes per day — expressed as a
// declarative experiment spec instead of hand-rolled sweep wiring, so
// changing the workload mix or the policy set is an edit to the spec
// literal, not new code. The same spec as JSON runs under
// `migexp run` (see docs/experiments.md).
package main

import (
	"fmt"
	"log"

	"filemig"
	"filemig/internal/units"
)

func main() {
	log.SetFlags(0)
	spec := &filemig.ExperimentSpec{
		Name:        "capacityplan",
		Description: "§2.3 staging-disk sizing under the paper's policy trio",
		Scenarios:   []string{"paper-1993"},
		Scale:       0.01,
		Seed:        11,
		Policies:    []string{"stp:1.4", "lru", "largest-first"},
		Capacities:  []float64{0.005, 0.01, 0.015, 0.02, 0.05, 0.10},
	}
	m, err := filemig.RunExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(filemig.RenderExperiment(m))

	// The §6 size-split ablation: how much cache does it take before the
	// big files stop churning everything out? Report the capacity where
	// STP's miss ratio first drops under 10%.
	sr := m.Scenarios[0]
	for _, cell := range sr.Policies[0].Cells {
		if cell.MissRatio < 0.10 {
			fmt.Printf("\nSTP^1.4 reaches <10%% miss ratio at %.1f%% of the store (%s)\n",
				100*cell.CapacityFraction, units.Bytes(cell.CapacityBytes))
			return
		}
	}
	fmt.Println("\nSTP^1.4 never reached a 10% miss ratio in the swept range")
}
