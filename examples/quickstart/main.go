// Quickstart: generate a small synthetic NCAR trace, simulate the mass
// storage system, and print the paper's headline table (Table 3) plus the
// two findings the abstract leads with — reads are periodic and
// human-driven, writes are flat and machine-driven.
package main

import (
	"fmt"
	"log"

	"filemig"
	"filemig/internal/core"
	"filemig/internal/trace"
)

func main() {
	log.SetFlags(0)
	// A 1% scale run: ~9,000 files, ~35,000 requests over two simulated
	// years. Everything is deterministic for a given seed.
	p, err := filemig.Run(filemig.Config{Scale: 0.01, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table 3: overall trace statistics ==")
	fmt.Print(core.RenderTable3(p.Report.Table3))

	total := p.Report.Table3.Total()
	reads := p.Report.Table3.OpTotal(trace.Read)
	fmt.Printf("\nreads are %.0f%% of references and %.0f%% of bytes (paper: 66%% and 73%%)\n",
		100*float64(reads.Refs)/float64(total.Refs),
		100*float64(reads.Bytes)/float64(total.Bytes))

	fmt.Println("\n== §5.2: request periodicity ==")
	fmt.Print(core.RenderPeriodicity(p.Report))
	fmt.Println("(expect ~24 and ~168 hours: one day and one week)")
}
