// Command benchgate compares a freshly measured benchmark snapshot
// (bench.sh output) against the committed BENCH.json and fails on
// regression:
//
//   - allocs_op must match the committed value up to max(16, 0.5%):
//     effectively exact — the worker-pool benchmarks jitter by a few
//     allocations with goroutine scheduling, and the parallel b2 block
//     decoders share an interner and a bounded path cache whose eviction
//     order (and hence re-intern count) shifts by tens of allocations
//     from run to run, while a real per-record allocation regression
//     shows up thousands of times over the slack.
//   - b_op must stay within 10% of the committed value.
//   - ns_op is informational only: CI boxes are noisy, so timing is
//     printed but never fails the gate.
//
// A benchmark present in the committed snapshot but missing from the
// measurement fails the gate (the suite silently shrank); a new
// benchmark missing from the committed snapshot is reported so the
// snapshot gets updated.
//
// Usage: go run ./.github/benchgate BENCH.json BENCH_CI.json
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// entry is one benchmark's metrics as bench.sh records them.
type entry struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// load reads one bench.sh JSON snapshot.
func load(path string) (map[string]entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]entry
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return m, nil
}

// allocSlack is the permitted allocs_op drift: max(16, 0.5%). The
// proportional term covers scheduling-dependent shared-cache churn in
// the parallel decode benchmarks (observed spread ~0.3% of the total);
// the floor keeps small-count benchmarks effectively exact.
func allocSlack(committed float64) float64 {
	return math.Max(16, committed/200)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchgate committed.json measured.json")
		os.Exit(2)
	}
	committed, err := load(os.Args[1])
	if err == nil {
		var measured map[string]entry
		measured, err = load(os.Args[2])
		if err == nil {
			os.Exit(compare(committed, measured))
		}
	}
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// compare prints a per-benchmark report and returns the exit code.
func compare(committed, measured map[string]entry) int {
	names := make([]string, 0, len(committed))
	for name := range committed {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		want := committed[name]
		got, ok := measured[name]
		if !ok {
			fmt.Printf("FAIL %s: missing from measurement\n", name)
			failures++
			continue
		}
		status := "ok  "
		var why string
		if d := math.Abs(got.AllocsOp - want.AllocsOp); d > allocSlack(want.AllocsOp) {
			status = "FAIL"
			why += fmt.Sprintf(" allocs_op %.0f vs committed %.0f (slack %.0f);",
				got.AllocsOp, want.AllocsOp, allocSlack(want.AllocsOp))
		}
		if want.BOp > 0 && math.Abs(got.BOp-want.BOp) > 0.10*want.BOp {
			status = "FAIL"
			why += fmt.Sprintf(" b_op %.0f vs committed %.0f (±10%%);", got.BOp, want.BOp)
		}
		fmt.Printf("%s %-45s allocs %8.0f (ref %8.0f)  B/op %10.0f (ref %10.0f)  ns/op %12.0f (ref %12.0f, informational)%s\n",
			status, name, got.AllocsOp, want.AllocsOp, got.BOp, want.BOp, got.NsOp, want.NsOp, why)
		if status == "FAIL" {
			failures++
		}
	}
	for name := range measured {
		if _, ok := committed[name]; !ok {
			fmt.Printf("note %s: not in committed snapshot — update BENCH.json\n", name)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) against the committed snapshot\n", failures)
		return 1
	}
	fmt.Println("benchgate: no regressions")
	return 0
}
