// Command doclint fails when an exported identifier in the given package
// directories lacks a doc comment, or when a package lacks a package
// comment. It keeps `go doc` output useful for the packages whose API
// matters most (the facade and the trace wire formats).
//
// Usage (from the repository root, via .github/doclint.sh):
//
//	go run .github/doclint/doclint.go internal/trace .
//
// The directory lives under .github/ so the Go tool's ./... wildcard
// ignores it; it is only built when CI names the file explicitly.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <package-dir> [package-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir checks every non-test Go file directly inside dir and reports
// the number of undocumented exported identifiers.
func lintDir(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	bad := 0
	pkgDoc := false
	files := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files++
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		if f.Doc != nil {
			pkgDoc = true
		}
		bad += lintFile(fset, f)
	}
	if files > 0 && !pkgDoc {
		fmt.Printf("%s: package has no package comment\n", dir)
		bad++
	}
	return bad
}

// lintFile reports undocumented exported declarations in one file.
func lintFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: exported %s %s has no doc comment\n", fset.Position(pos), what, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "function", d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil {
							report(n.Pos(), "value", n.Name)
							break // one report per spec line is enough
						}
					}
				}
			}
		}
	}
	return bad
}

// exportedReceiver reports whether a method's receiver type is exported
// (functions without receivers count as exported scope).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
