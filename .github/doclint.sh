#!/bin/sh
# Doc-lint gate: vet, gofmt, and doc-comment coverage for every internal
# package plus the facade.
# Run from the repository root: .github/doclint.sh
set -e

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== doclint (internal/..., facade) =="
go run .github/doclint/doclint.go $(go list -f '{{.Dir}}' ./internal/...) .
echo "doc lint clean"
