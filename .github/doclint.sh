#!/bin/sh
# Lint gate: gofmt, go vet, and the miglint analyzer suite (which now
# subsumes the old doc-comment checker as its doccomment analyzer — see
# docs/lint.md).
# Run from the repository root: .github/doclint.sh
set -e

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== miglint =="
go run ./cmd/miglint ./...
echo "miglint clean"
