#!/bin/sh
# Doc-lint gate: vet, gofmt, and doc-comment coverage for the packages
# whose godoc matters most (the facade and the trace wire formats).
# Run from the repository root: .github/doclint.sh
set -e

echo "== go vet =="
go vet ./...

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== doclint (internal/trace, facade) =="
go run .github/doclint/doclint.go internal/trace .
echo "doc lint clean"
