package filemig

import (
	"fmt"
	"strings"

	"filemig/internal/device"
	"filemig/internal/migration"
	"filemig/internal/mss"
	"filemig/internal/units"
)

// renderTable1 prints the device comparison (Table 1) plus the §2.2
// whole-file crossover analysis between optical disk and tape.
func renderTable1() string {
	var b strings.Builder
	b.WriteString(device.RenderTable1(device.Table1()))
	x := device.CrossoverSize(&device.OpticalJukebox, &device.SiloTape3480,
		units.Bytes(200*units.MB))
	fmt.Fprintf(&b, "\nWhole-file fetch crossover (optical -> tape wins): %s\n", x)
	return b.String()
}

// renderFigure1 prints the storage pyramid.
func renderFigure1() string {
	return device.RenderHierarchy(device.Hierarchy())
}

// renderFigure2 prints the network topology.
func renderFigure2() string {
	var b strings.Builder
	b.WriteString("Figure 2: network connections between machines at NCAR\n")
	for _, l := range mss.Topology() {
		fmt.Fprintf(&b, "  %-28s -> %-28s via %s\n", l.From, l.To, l.Via)
	}
	return b.String()
}

// RenderPolicyComparison prints a §6-style policy table.
func RenderPolicyComparison(results []migration.CacheResult, days float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %14s\n",
		"policy", "miss%", "byte miss%", "evictions", "person-min/day")
	for _, r := range results {
		fmt.Fprintf(&b, "%-16s %9.2f%% %11.2f%% %12d %14.1f\n",
			r.Policy, 100*r.MissRatio(), 100*r.ByteMissRatio(), r.Evictions,
			r.PersonMinutesPerDay(days, extraTapeLatency))
	}
	return b.String()
}

// extraTapeLatency is the added human wait of a read miss (Table 3:
// ~104s silo vs ~30s disk), shared with the experiment manifests.
const extraTapeLatency = migration.ExtraTapeLatency

// RenderExponentSweep prints an STP exponent ablation.
func RenderExponentSweep(points []migration.ExponentPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "exponent", "miss%", "byte miss%", "evictions")
	for _, p := range points {
		fmt.Fprintf(&b, "STP^%-6.2g %9.2f%% %11.2f%% %12d\n",
			p.K, 100*p.Result.MissRatio(), 100*p.Result.ByteMissRatio(), p.Result.Evictions)
	}
	if best, ok := migration.BestExponent(points); ok {
		fmt.Fprintf(&b, "best exponent: %g (%.2f%% miss)\n", best.K, 100*best.Result.MissRatio())
	}
	return b.String()
}

// RenderMultiSweep prints one capacity sweep per policy.
func RenderMultiSweep(sweeps []migration.PolicySweep, days float64) string {
	var b strings.Builder
	for _, s := range sweeps {
		fmt.Fprintf(&b, "policy %s\n", s.Policy)
		fmt.Fprintf(&b, "  %9s %9s %12s %16s\n", "capacity", "miss%", "byte miss%", "person-min/day")
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "  %8.1f%% %8.2f%% %11.2f%% %16.1f\n",
				100*pt.CapacityFraction,
				100*pt.Result.MissRatio(),
				100*pt.Result.ByteMissRatio(),
				pt.Result.PersonMinutesPerDay(days, extraTapeLatency))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderSweep prints a capacity sweep.
func RenderSweep(points []migration.SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s\n", "capacity", "miss%", "byte miss%")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f%% %9.2f%% %11.2f%%\n",
			100*p.CapacityFraction, 100*p.Result.MissRatio(), 100*p.Result.ByteMissRatio())
	}
	return b.String()
}
