#!/usr/bin/env bash
# bench.sh — run the hot-path tentpole benchmarks and emit BENCH_PR3.json
# (benchmark name → ns/op, B/op, allocs/op), so the performance
# trajectory is tracked in-repo from PR 3 on. The committed
# BENCH_PR3.json is a ≥5-iteration snapshot from the PR's own benching
# box; CI regenerates one with BENCHTIME=1x as a smoke pass and uploads
# it as an artifact — don't commit 1x numbers over the snapshot.
#
#   ./bench.sh            # 5 iterations per benchmark
#   BENCHTIME=20x ./bench.sh
set -euo pipefail
cd "$(dirname "$0")"

BENCHES='BenchmarkStreamAnalyze|BenchmarkPolicyComparison$|BenchmarkCoalescingSavings'
OUT=BENCH_PR3.json

raw=$(go test -run '^$' -bench "$BENCHES" -benchtime "${BENCHTIME:-5x}" -benchmem -count 1 .)
echo "$raw"

echo "$raw" | awk '
BEGIN { printf "{\n" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = "null"; b = "null"; al = "null"
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      b  = $(i-1)
        if ($i == "allocs/op") al = $(i-1)
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", sep, name, ns, b, al
    sep = ",\n"
}
END { printf "\n}\n" }
' > "$OUT"

echo "wrote $OUT"
