#!/usr/bin/env bash
# bench.sh — run the hot-path tentpole benchmarks and emit a JSON
# snapshot (benchmark name → ns/op, B/op, allocs/op), so the performance
# trajectory is tracked in-repo. The committed BENCH.json is a
# ≥5-iteration snapshot from the PR's own benching box; CI regenerates
# one at the same iteration count and .github/benchgate compares the two
# — allocs_op exactly, b_op within 10%, ns_op informational only (CI
# boxes are noisy) — failing the build on regression.
#
#   ./bench.sh                  # 5 iterations, writes BENCH.json
#   ./bench.sh BENCH_CI.json    # parameterized output name
#   BENCHTIME=20x ./bench.sh    # more iterations for a committed update
#
# GOMAXPROCS is pinned (default 4) so default worker-pool sizes — and
# with them allocation counts — are comparable across machines.
set -euo pipefail
cd "$(dirname "$0")"

BENCHES='BenchmarkMigdIngest|BenchmarkStreamAnalyze|BenchmarkB2Decode|BenchmarkPolicyComparison$|BenchmarkPolicyComparisonModern/|BenchmarkCoalescingSavings|BenchmarkSnapshotRoundTrip|BenchmarkDistributedGrid'
OUT=${1:-${BENCH_OUT:-BENCH.json}}
export GOMAXPROCS=${GOMAXPROCS:-4}

raw=$(go test -run '^$' -bench "$BENCHES" -benchtime "${BENCHTIME:-5x}" -benchmem -count 1 .)
echo "$raw"

echo "$raw" | awk '
BEGIN { printf "{\n" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = ""; b = ""; al = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      b  = $(i-1)
        if ($i == "allocs/op") al = $(i-1)
    }
    if (ns == "" || b == "" || al == "") {
        printf "bench.sh: %s is missing ns/op, B/op or allocs/op (was -benchmem dropped?)\n", name > "/dev/stderr"
        bad = 1
        exit 1
    }
    printf "%s  \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", sep, name, ns, b, al
    sep = ",\n"
}
END { if (bad) exit 1; printf "\n}\n" }
' > "$OUT"

echo "wrote $OUT"
