// Package filemig reproduces Miller & Katz, "An Analysis of File
// Migration in a Unix Supercomputing Environment" (USENIX Winter 1993):
// a trace-driven study of the NCAR mass storage system and its
// implications for file migration algorithms.
//
// The package is the public facade over the internal pieces:
//
//	workload — calibrated synthetic two-year trace generator (the paper's
//	           original logs are proprietary; the generator reproduces
//	           every published aggregate)
//	mss      — discrete-event simulator of the NCAR installation (disks,
//	           tape silo, operator-mounted shelf tape) that supplies
//	           request latencies
//	core     — the paper's analysis: Tables 3-4 and Figures 3-12, plus
//	           the day/week periodicity detection
//	migration— STP/LRU/size/FIFO/SAAC/OPT policies, the disk-cache
//	           simulator, request coalescing and prefetching
//
// The typical pipeline is Run, which generates a trace, replays it
// through the simulator, and analyses the result:
//
//	rep, err := filemig.Run(filemig.Config{Scale: 0.02, Seed: 1})
//	fmt.Print(core.RenderTable3(rep.Report.Table3))
package filemig

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"filemig/internal/core"
	"filemig/internal/host"
	"filemig/internal/migration"
	"filemig/internal/mss"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

// Config configures an end-to-end pipeline run.
type Config struct {
	// Scale sizes the workload relative to the paper's two-year trace
	// (905,000 files, ~3.5 M requests). Scale 1.0 is paper scale; tests
	// and examples typically use 0.005-0.05. Must be in (0, 1].
	Scale float64
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// Days shortens the trace from the paper's 731 days when positive.
	Days int
	// SkipSimulation leaves latency fields zero (faster; Table 3's
	// latency rows and Figure 3 will be empty).
	SkipSimulation bool
	// WriteBehind runs the simulator with §6's eager write-behind.
	WriteBehind bool
	// Workload overrides individual generator knobs; zero fields keep
	// the calibrated defaults.
	Bursts   *bool
	Holidays *bool
}

// Pipeline is the result of a Run: the generated artefacts, the simulated
// trace, and the finished analysis.
type Pipeline struct {
	Workload *workload.Result
	Records  []trace.Record // with simulated latencies unless SkipSimulation
	Report   *core.Report
	Sim      *mss.Simulator // nil when SkipSimulation

	// interner is the pipeline's shared MSS-path table: every per-path
	// consumer hanging off this Pipeline (Accesses, Coalesce) interns
	// through it instead of rebuilding a private string map. internMu
	// serialises those consumers — the Interner itself is not safe for
	// concurrent use, and both methods were previously independent
	// read-only passes over Records.
	internMu sync.Mutex
	interner *trace.Interner
}

// pathInterner lazily builds the shared path table; callers must hold
// internMu for the whole time they use it.
func (p *Pipeline) pathInterner() *trace.Interner {
	if p.interner == nil {
		p.interner = trace.NewInterner()
	}
	return p.interner
}

// workloadConfig maps the facade Config onto the generator's, applying
// the scale validation and optional overrides once for Run and RunStream.
func (cfg Config) workloadConfig() (workload.Config, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return workload.Config{}, fmt.Errorf("filemig: scale %v out of (0,1]", cfg.Scale)
	}
	wcfg := workload.DefaultConfig(cfg.Scale, cfg.Seed)
	if cfg.Days > 0 {
		wcfg.Days = cfg.Days
	}
	if cfg.Bursts != nil {
		wcfg.Bursts = *cfg.Bursts
	}
	if cfg.Holidays != nil {
		wcfg.Holidays = *cfg.Holidays
	}
	return wcfg, nil
}

// Run executes generate → simulate → analyse.
func Run(cfg Config) (*Pipeline, error) {
	wcfg, err := cfg.workloadConfig()
	if err != nil {
		return nil, err
	}
	res, err := workload.Generate(wcfg)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{Workload: res, Records: res.Records}
	if !cfg.SkipSimulation {
		scfg := mss.DefaultConfig(cfg.Seed)
		scfg.WriteBehind = cfg.WriteBehind
		p.Sim = mss.NewSimulator(scfg)
		p.Records, err = p.Sim.Replay(res.Records)
		if err != nil {
			return nil, err
		}
	}
	a := core.New(core.Options{Start: wcfg.Start, Days: wcfg.Days, Tree: res.Tree})
	a.AddAll(p.Records)
	p.Report = a.Report()
	return p, nil
}

// StreamConfig configures RunStream, the bounded-memory variant of Run.
type StreamConfig struct {
	// Config carries the workload knobs. SkipSimulation is implied: the
	// streaming path never runs the MSS simulator, so latency fields stay
	// zero (Table 3's latency rows and Figure 3 will be empty), exactly
	// as with Run{SkipSimulation: true}.
	Config

	// ShardDuration is the analysis time partition width; zero means
	// core.DefaultShardDuration (four weeks).
	ShardDuration time.Duration

	// Workers bounds the analysis worker pool; <= 0 means one per CPU
	// (resolved here at the facade — the deterministic core takes only
	// explicit counts). Output is identical for any worker count.
	Workers int
}

// RunStream executes generate → analyse as a streaming pipeline: records
// flow one at a time from the workload generator into the sharded
// analysis, so peak memory holds shards in flight rather than the whole
// trace. The Report is byte-identical to the one Run produces for the
// same workload with SkipSimulation set.
func RunStream(cfg StreamConfig) (*core.Report, error) {
	return RunStreamContext(context.Background(), cfg)
}

// RunStreamContext is RunStream with cancellation: a cancelled ctx
// aborts the pipeline between analysis shards and surfaces ctx's error.
// Cancellation never changes results.
func RunStreamContext(ctx context.Context, cfg StreamConfig) (*core.Report, error) {
	wcfg, err := cfg.workloadConfig()
	if err != nil {
		return nil, err
	}
	sr, err := workload.GenerateStream(wcfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = host.DefaultWorkers()
	}
	return core.AnalyzeStream(ctx, core.StreamOptions{
		Options:       core.Options{Start: wcfg.Start, Days: wcfg.Days, Tree: sr.Tree},
		ShardDuration: cfg.ShardDuration,
		Workers:       workers,
	}, sr.Stream)
}

// AnalyzeTraceFile analyses one encoded trace file on the fastest path
// its format allows. A b2 file is opened through its trailing block
// index and analysed with core.AnalyzeB2: shard cutting is pure index
// arithmetic and blocks decode on the worker pool, each exactly once.
// Any other format falls back to the sharded streaming analysis over a
// sequential read. The report is byte-identical either way, and to
// analysing the same records in one slice. workers <= 0 means one per
// CPU and shard <= 0 the default four-week width, as in RunStream.
func AnalyzeTraceFile(path string, workers int, shard time.Duration) (*core.Report, error) {
	return AnalyzeTraceFileContext(context.Background(), path, workers, shard)
}

// AnalyzeTraceFileContext is AnalyzeTraceFile with cancellation,
// aborting between shards (or b2 block groups) with ctx's error.
func AnalyzeTraceFileContext(ctx context.Context, path string, workers int, shard time.Duration) (*core.Report, error) {
	if workers <= 0 {
		workers = host.DefaultWorkers()
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	opts := core.StreamOptions{
		Options:       core.Options{DedupWindow: workload.DedupWindow},
		ShardDuration: shard,
		Workers:       workers,
	}
	bf, err := trace.OpenB2File(f, st.Size())
	if err == nil {
		return core.AnalyzeB2(ctx, core.B2Options{StreamOptions: opts}, bf)
	}
	if !errors.Is(err, trace.ErrNotB2) {
		return nil, err
	}
	// Not a b2 file; OpenB2File read via ReadAt, so the offset is still
	// zero and the sniffing sequential path starts clean.
	s, err := trace.OpenStream(f)
	if err != nil {
		return nil, err
	}
	return core.AnalyzeStream(ctx, opts, s)
}

// SaveSnapshot analyses one encoded trace (ASCII v1, binary b1, or
// columnar b2, auto-detected) and writes the analysis state to dst as
// an s1 snapshot
// — the map step of a distributed analysis. Snapshots of trace slices
// made anywhere, by any worker, merge through MergeSnapshots into a
// report byte-identical to analysing the concatenated trace in one
// process; slices need not align with the eight-hour dedup window and
// workers need not agree on a calendar origin. The analysis runs on the
// sharded streaming path, so memory stays proportional to a shard plus
// the journal, not the trace. See docs/snapshots.md for the format.
func SaveSnapshot(dst io.Writer, src io.Reader) error {
	s, err := trace.OpenStream(src)
	if err != nil {
		return err
	}
	a, err := core.AccumulateStream(context.Background(), core.StreamOptions{
		Options: core.Options{DedupWindow: workload.DedupWindow, Journal: true},
	}, s)
	if err != nil {
		return err
	}
	return a.WriteSnapshot(dst)
}

// MergeSnapshots loads s1 snapshots — in trace time order, one per
// disjoint contiguous trace slice — and merges them into a finished
// Pipeline carrying the combined Report: the reduce step pairing
// SaveSnapshot. Merging a single snapshot simply loads it. The
// resulting Pipeline has no Records, so record-level experiments
// (coalesce) are unavailable, exactly as with RunStream.
func MergeSnapshots(snaps ...io.Reader) (*Pipeline, error) {
	a, err := core.MergeSnapshots(snaps...)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Report: a.Report()}, nil
}

// Accesses converts the pipeline's records into the migration
// simulator's access string, through the pipeline's shared interner.
// Safe for concurrent use with Coalesce.
func (p *Pipeline) Accesses() []migration.Access {
	p.internMu.Lock()
	defer p.internMu.Unlock()
	return migration.AccessesFromRecordsInterned(p.pathInterner(), p.Records)
}

// Coalesce runs the §6 request-coalescing analysis at the paper's
// eight-hour window, through the pipeline's shared interner. Safe for
// concurrent use with Accesses.
func (p *Pipeline) Coalesce() migration.CoalesceResult {
	p.internMu.Lock()
	defer p.internMu.Unlock()
	return migration.NewCoalescer(p.pathInterner()).Run(p.Records, workload.DedupWindow)
}

// StandardPolicies returns the paper-relevant online policy set plus the
// offline OPT bound built for the given access string.
func StandardPolicies(accs []migration.Access) []migration.Policy {
	return []migration.Policy{
		migration.STP{K: 1.4},
		migration.STP{K: 1.0},
		migration.LRU{},
		migration.SAAC{},
		migration.FIFO{},
		migration.LargestFirst{},
		migration.SmallestFirst{},
		migration.NewRandom(1),
		migration.NewOPT(migration.NewFutureIndex(accs)),
	}
}

// ModernPolicies returns fresh instances of the post-1993 policy
// frontier — ARC, LRU-2, GDSF, the §2.3-priced cost-aware policy, and
// adaptive STP. All five carry per-replay state (histories, ghost
// lists, priority clocks), so every replay needs its own set; the accs
// parameter mirrors StandardPolicies for symmetry and future policies
// that precompute over the access string. See docs/policies.md.
func ModernPolicies(accs []migration.Access) []migration.Policy {
	return []migration.Policy{
		migration.NewARC(),
		migration.NewLRUK(2),
		migration.NewGDSF(),
		migration.NewCostAware(migration.DefaultTapeRateMBps),
		migration.NewAdaptiveSTP(),
	}
}

// Experiment identifies one reproducible table or figure.
type Experiment struct {
	ID     string // "table3", "figure7", ...
	Title  string
	Render func(p *Pipeline) string
}

// Experiments returns the full registry, in paper order. Each entry's
// Render prints the reproduced table or figure from a finished pipeline.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: media comparison", func(*Pipeline) string {
			return renderTable1()
		}},
		{"figure1", "Figure 1: storage pyramid", func(*Pipeline) string {
			return renderFigure1()
		}},
		{"figure2", "Figure 2: NCAR network topology", func(*Pipeline) string {
			return renderFigure2()
		}},
		{"table3", "Table 3: overall trace statistics", func(p *Pipeline) string {
			return core.RenderTable3(p.Report.Table3)
		}},
		{"table4", "Table 4: file store statistics", func(p *Pipeline) string {
			return core.RenderTable4(p.Report.Table4)
		}},
		{"figure3", "Figure 3: latency to first byte", func(p *Pipeline) string {
			return core.RenderFigure3(p.Report)
		}},
		{"figure4", "Figure 4: data rate over a day", func(p *Pipeline) string {
			return core.RenderFigure4(p.Report.Figure4)
		}},
		{"figure5", "Figure 5: data rate over a week", func(p *Pipeline) string {
			return core.RenderFigure5(p.Report.Figure5)
		}},
		{"figure6", "Figure 6: weekly rate over two years", func(p *Pipeline) string {
			return core.RenderFigure6(p.Report.Figure6)
		}},
		{"figure7", "Figure 7: intervals between MSS requests", func(p *Pipeline) string {
			return core.RenderFigure7(p.Report.Figure7)
		}},
		{"figure8", "Figure 8: file reference counts", func(p *Pipeline) string {
			return core.RenderFigure8(p.Report.Figure8)
		}},
		{"figure9", "Figure 9: per-file interreference intervals", func(p *Pipeline) string {
			return core.RenderFigure9(p.Report.Figure9)
		}},
		{"figure10", "Figure 10: dynamic size distribution", func(p *Pipeline) string {
			return core.RenderFigure10(p.Report.Figure10)
		}},
		{"figure11", "Figure 11: static size distribution", func(p *Pipeline) string {
			return core.RenderFigure11(p.Report.Figure11)
		}},
		{"figure12", "Figure 12: directory size distribution", func(p *Pipeline) string {
			return core.RenderFigure12(p.Report.Figure12)
		}},
		{"periodicity", "§5.2: request periodicity", func(p *Pipeline) string {
			return core.RenderPeriodicity(p.Report)
		}},
		{"coalesce", "§6: requests savable by 8-hour coalescing", func(p *Pipeline) string {
			r := p.Coalesce()
			return fmt.Sprintf("Coalescing window %v: %d of %d requests savable (%.1f%%)\n",
				r.Window, r.Savable, r.Requests, 100*r.SavableFraction())
		}},
	}
}

// FindExperiment returns the experiment with the given ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// DedupWindow re-exports the paper's §5.3 eight-hour analysis window.
const DedupWindow = 8 * time.Hour
