package filemig

// Smoke tests for the command-line tools: build each binary once and run
// it on a tiny workload, verifying the end-user surface (flags, stdin
// piping, output shape). Skipped under -short.

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"filemig/internal/trace"
)

func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping cmd smoke tests in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"tracegen", "mssanalyze", "msssim", "migsim", "migexp"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func TestCmdPipelines(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, stdin []byte, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	// tracegen: generate a tiny simulated trace.
	traceTxt := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60", "-sim")
	if !bytes.HasPrefix(traceTxt, []byte("#filemig-trace")) {
		t.Fatalf("tracegen output missing header: %.60s", traceTxt)
	}
	lines := bytes.Count(traceTxt, []byte("\n"))
	if lines < 100 {
		t.Fatalf("tracegen produced only %d lines", lines)
	}

	// tracegen -raw: verbose log form.
	rawTxt := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "30", "-raw")
	if !bytes.Contains(rawTxt, []byte("MSCP: seq=")) {
		t.Error("raw log missing MSCP lines")
	}

	// mssanalyze over the piped trace.
	out := string(run("mssanalyze", traceTxt, "-i", "-", "-id", "table3", "-id", "figure8"))
	for _, want := range []string{"Table 3", "References", "Figure 8", "never read"} {
		if !strings.Contains(out, want) {
			t.Errorf("mssanalyze output missing %q", want)
		}
	}

	// msssim with write-behind over the same trace.
	out = string(run("msssim", traceTxt, "-i", "-", "-write-behind"))
	for _, want := range []string{"write-behind=true", "mscp", "operator", "tape mounts"} {
		if !strings.Contains(out, want) {
			t.Errorf("msssim output missing %q", want)
		}
	}

	// migsim policy comparison and coalescing over the trace.
	out = string(run("migsim", traceTxt, "-i", "-", "-capacity", "0.05"))
	for _, want := range []string{"policy comparison", "OPT", "STP^1.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("migsim output missing %q", want)
		}
	}
	out = string(run("migsim", traceTxt, "-i", "-", "-coalesce"))
	if !strings.Contains(out, "8h0m0s") {
		t.Errorf("migsim coalesce output missing 8h row:\n%s", out)
	}

	// tracegen -format binary, then every consumer auto-detects it.
	traceBin := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60", "-format", "binary")
	if !bytes.HasPrefix(traceBin, []byte("#filemig-trace b1")) {
		t.Fatalf("binary tracegen output missing b1 header: %.40q", traceBin)
	}
	if len(traceBin) >= len(run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60")) {
		t.Error("binary encoding not smaller than ascii")
	}
	fromBin := string(run("mssanalyze", traceBin, "-i", "-", "-id", "table4"))
	if !strings.Contains(fromBin, "Number of files") {
		t.Errorf("mssanalyze could not auto-detect binary input:\n%s", fromBin)
	}
	out = string(run("msssim", traceBin, "-i", "-", "-format", "binary"))
	if !strings.Contains(out, "tape mounts") {
		t.Errorf("msssim -format binary failed:\n%s", out)
	}

	// mssanalyze -stream must match the slice path byte for byte on the
	// shared experiments.
	slice := string(run("mssanalyze", traceBin, "-i", "-", "-id", "table3", "-id", "figure8"))
	streamed := string(run("mssanalyze", traceBin, "-i", "-", "-stream", "-workers", "3",
		"-shard-days", "7", "-id", "table3", "-id", "figure8"))
	if slice != streamed {
		t.Errorf("-stream output differs from slice path:\n--- slice ---\n%s\n--- stream ---\n%s",
			slice, streamed)
	}
}

// TestMssanalyzeB2Golden is the CLI acceptance gate for the b2 block
// format: the committed testdata/mini.b2 fixture (tracegen -scale
// 0.002 -seed 3 -days 120 -format b2) must analyse through the
// index-seek -stream path to exactly the committed golden report, and
// the slice path, the forced -format b2 path, and the piped-stdin
// sequential path must all render the same bytes. Regenerate with
// UPDATE_B2_GOLDEN=1.
func TestMssanalyzeB2Golden(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, stdin []byte, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	fixture := filepath.Join("testdata", "mini.b2")
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("#filemig-trace b2")) {
		t.Fatalf("fixture missing b2 header: %.40q", raw)
	}

	ids := []string{"-id", "table3", "-id", "table4", "-id", "figure8"}
	streamed := run("mssanalyze", nil,
		append([]string{"-i", fixture, "-stream", "-workers", "4", "-shard-days", "7"}, ids...)...)

	goldenPath := filepath.Join("testdata", "b2_golden.txt")
	if os.Getenv("UPDATE_B2_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, streamed, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(streamed))
	} else {
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed, golden) {
			t.Errorf("b2 stream report does not match testdata/b2_golden.txt:\n--- got ---\n%s\n--- golden ---\n%s",
				streamed, golden)
		}
	}

	// Every other route to the same records renders identically: the
	// slice path, the forced format on the index-seek path, and the
	// sequential reader over a pipe (stdin is not seekable).
	for _, tc := range []struct {
		name  string
		stdin []byte
		args  []string
	}{
		{"slice", nil, []string{"-i", fixture}},
		{"forced-b2", nil, []string{"-i", fixture, "-format", "b2", "-stream", "-workers", "2"}},
		{"stdin-stream", raw, []string{"-i", "-", "-stream", "-workers", "2"}},
	} {
		got := run("mssanalyze", tc.stdin, append(tc.args, ids...)...)
		if !bytes.Equal(got, streamed) {
			t.Errorf("%s path differs from the index-seek stream path:\n--- got ---\n%s\n--- stream ---\n%s",
				tc.name, got, streamed)
		}
	}

	// tracegen regenerates the fixture byte-identically, and msssim reads
	// b2 input.
	regen := filepath.Join(t.TempDir(), "regen.b2")
	run("tracegen", nil, "-scale", "0.002", "-seed", "3", "-days", "120", "-format", "b2", "-o", regen)
	if b, err := os.ReadFile(regen); err != nil || !bytes.Equal(b, raw) {
		t.Errorf("tracegen does not reproduce testdata/mini.b2 (err=%v, %d vs %d bytes)", err, len(b), len(raw))
	}
	if out := string(run("msssim", raw, "-i", "-")); !strings.Contains(out, "tape mounts") {
		t.Errorf("msssim could not read b2 input:\n%s", out)
	}
}

// TestMssanalyzeSnapshotMerge is the acceptance gate for the
// distributed-analysis surface: the paper workload encoded as two trace
// slice files, each analysed to an s1 snapshot by `mssanalyze
// -snapshot` (one slice via the slice path, one via -stream), then
// combined by `mssanalyze merge` — whose report must be byte-identical
// to analysing the unsplit trace, and must match the committed golden
// report testdata/snapshot_golden.txt.
func TestMssanalyzeSnapshotMerge(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	// The paper workload, simulated for real latency columns, cut into
	// two binary slice files at an arbitrary record boundary (dedup
	// chains deliberately cross it).
	p, err := Run(Config{Scale: 0.001, Seed: 3, Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cut := len(p.Records)*2/3 + 1
	whole := filepath.Join(dir, "whole.b1")
	slices := []string{filepath.Join(dir, "s0.b1"), filepath.Join(dir, "s1.b1")}
	for path, recs := range map[string][]trace.Record{
		whole: p.Records, slices[0]: p.Records[:cut], slices[1]: p.Records[cut:],
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteAllFormat(f, recs, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Map: one snapshot per slice, exercising both producer paths.
	snaps := []string{filepath.Join(dir, "s0.s1"), filepath.Join(dir, "s1.s1")}
	run("mssanalyze", "-i", slices[0], "-snapshot", snaps[0])
	run("mssanalyze", "-i", slices[1], "-stream", "-workers", "3", "-shard-days", "7",
		"-snapshot", snaps[1])

	// Reduce: the merged report matches the unsplit analysis byte for
	// byte, and the committed golden file.
	ids := []string{"-id", "table3", "-id", "table4", "-id", "figure8", "-id", "figure9"}
	merged := run("mssanalyze", append([]string{"merge"}, append(ids, snaps...)...)...)
	direct := run("mssanalyze", append([]string{"-i", whole}, ids...)...)
	if !bytes.Equal(merged, direct) {
		t.Errorf("merged snapshot report differs from direct analysis:\n--- merged ---\n%s\n--- direct ---\n%s",
			merged, direct)
	}
	goldenPath := filepath.Join("testdata", "snapshot_golden.txt")
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(merged))
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, golden) {
		t.Errorf("merged report does not match testdata/snapshot_golden.txt:\n--- got ---\n%s\n--- golden ---\n%s",
			merged, golden)
	}
}

// TestMigexpGoldenManifest is the acceptance gate for the experiment
// runner's end-user surface: one spec file drives a 2-scenario ×
// 3-policy × 3-capacity grid, and the JSON manifest it emits is
// byte-identical at every worker count.
func TestMigexpGoldenManifest(t *testing.T) {
	bin := buildTools(t)
	run := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "migexp"), args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("migexp %v: %v\nstderr: %s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}
	spec := filepath.Join("testdata", "quickgrid.json")

	// validate describes the plan without running it.
	plan := string(run("validate", spec))
	if !strings.Contains(plan, "2 sources × 3 policies × 3 capacities = 18 cells") {
		t.Fatalf("validate plan wrong:\n%s", plan)
	}

	// scenarios lists the full library.
	scen := string(run("scenarios"))
	for _, want := range []string{"paper-1993", "diurnal-interactive",
		"checkpoint-restart", "archive-coldscan"} {
		if !strings.Contains(scen, want) {
			t.Errorf("scenarios listing missing %s:\n%s", want, scen)
		}
	}

	// run at three worker counts: tables on stdout, manifests identical.
	dir := t.TempDir()
	var manifests [][]byte
	for i, workers := range []string{"1", "2", "8"} {
		out := filepath.Join(dir, "m"+workers+".json")
		tables := string(run("run", spec, "-workers", workers, "-o", out))
		if i == 0 {
			for _, want := range []string{"quickgrid", "paper-1993",
				"checkpoint-restart", "STP^1.4", "LRU", "OPT", "trace sha256"} {
				if !strings.Contains(tables, want) {
					t.Errorf("run tables missing %q:\n%s", want, tables)
				}
			}
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, b)
	}
	for i := 1; i < len(manifests); i++ {
		if !bytes.Equal(manifests[0], manifests[i]) {
			t.Fatalf("manifest differs between -workers 1 and -workers %d", []int{1, 2, 8}[i])
		}
	}

	// -json emits exactly the manifest bytes.
	if jsonOut := run("run", spec, "-workers", "2", "-json"); !bytes.Equal(jsonOut, manifests[0]) {
		t.Error("-json stdout differs from -o manifest file")
	}
}

// TestMigexpModernGolden pins the modern policy frontier end to end:
// running the committed moderngrid spec (the five post-1993 policies
// against STP^1.4 and LRU) reproduces the committed golden manifest
// byte-for-byte at every worker count. Regenerate the golden with
//
//	go run ./cmd/migexp run testdata/moderngrid.json -o testdata/moderngrid_manifest.json
func TestMigexpModernGolden(t *testing.T) {
	bin := buildTools(t)
	spec := filepath.Join("testdata", "moderngrid.json")
	golden, err := os.ReadFile(filepath.Join("testdata", "moderngrid_manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"1", "2", "8"} {
		cmd := exec.Command(filepath.Join(bin, "migexp"), "run", spec, "-workers", workers, "-json")
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("migexp run -workers %s: %v\nstderr: %s", workers, err, stderr.String())
		}
		if !bytes.Equal(stdout.Bytes(), golden) {
			t.Errorf("-workers %s manifest differs from testdata/moderngrid_manifest.json", workers)
		}
	}
}

// TestMssanalyzeMergeHardening covers the merge subcommand's input
// surface: directories and globs expand to their .s1 files, zero inputs
// is a hard error rather than an empty report, and a corrupt snapshot
// is rejected with the offending filename in the error.
func TestMssanalyzeMergeHardening(t *testing.T) {
	bin := buildTools(t)
	mss := filepath.Join(bin, "mssanalyze")
	run := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(mss, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("mssanalyze %v: %v\nstderr: %s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}
	// mustFail runs mssanalyze expecting a non-zero exit and returns
	// stderr for message assertions.
	mustFail := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(mss, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		err := cmd.Run()
		var exit *exec.ExitError
		if err == nil || !errors.As(err, &exit) || exit.ExitCode() == 0 {
			t.Fatalf("mssanalyze %v: expected non-zero exit, got %v\nstderr: %s",
				args, err, stderr.String())
		}
		return stderr.String()
	}

	// Two snapshots of a split paper workload, in their own directory.
	p, err := Run(Config{Scale: 0.001, Seed: 3, Days: 30})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snapDir := filepath.Join(dir, "snaps")
	if err := os.Mkdir(snapDir, 0o755); err != nil {
		t.Fatal(err)
	}
	cut := len(p.Records) / 2
	snaps := []string{filepath.Join(snapDir, "s0.s1"), filepath.Join(snapDir, "s1.s1")}
	for i, recs := range [][]trace.Record{p.Records[:cut], p.Records[cut:]} {
		slice := filepath.Join(dir, "slice.b1")
		f, err := os.Create(slice)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteAllFormat(f, recs, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		run("-i", slice, "-snapshot", snaps[i])
	}

	// Explicit files, the containing directory, and a glob all name the
	// same inputs and must render the same report.
	want := run("merge", "-id", "table3", snaps[0], snaps[1])
	if got := run("merge", "-id", "table3", snapDir); !bytes.Equal(got, want) {
		t.Errorf("merge <dir> differs from explicit file list:\n--- dir ---\n%s\n--- files ---\n%s",
			got, want)
	}
	if got := run("merge", "-id", "table3", filepath.Join(snapDir, "*.s1")); !bytes.Equal(got, want) {
		t.Errorf("merge <glob> differs from explicit file list:\n--- glob ---\n%s\n--- files ---\n%s",
			got, want)
	}

	// Zero inputs — no args, an empty directory, a matchless glob — must
	// exit non-zero, not succeed with an empty report.
	if msg := mustFail("merge"); !strings.Contains(msg, "at least one") {
		t.Errorf("bare merge error unhelpful: %s", msg)
	}
	empty := filepath.Join(dir, "empty")
	if err := os.Mkdir(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if msg := mustFail("merge", empty); !strings.Contains(msg, "no .s1 snapshots match") {
		t.Errorf("empty-dir merge error unhelpful: %s", msg)
	}
	if msg := mustFail("merge", filepath.Join(dir, "nope*.s1")); !strings.Contains(msg, "no .s1 snapshots match") {
		t.Errorf("matchless-glob merge error unhelpful: %s", msg)
	}

	// A corrupt snapshot fails the merge and the error names the file.
	corrupt := filepath.Join(dir, "bad.s1")
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if msg := mustFail("merge", snaps[1], corrupt); !strings.Contains(msg, "bad.s1") {
		t.Errorf("corrupt-snapshot error does not name the file: %s", msg)
	}
}

// TestMigexpDistributedProcesses runs the real multi-process topology:
// one coordinator process and two worker processes over loopback. The
// coordinator's -json manifest must be byte-identical to a local run,
// and every process must exit cleanly.
func TestMigexpDistributedProcesses(t *testing.T) {
	bin := buildTools(t)
	migexp := filepath.Join(bin, "migexp")
	spec := filepath.Join("testdata", "quickgrid.json")

	local, err := exec.Command(migexp, "run", spec, "-json").Output()
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	coord := exec.Command(migexp, "run", spec, "-distributed", "-listen", "127.0.0.1:0", "-json")
	var stdout bytes.Buffer
	coord.Stdout = &stdout
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator announces its address on stderr before serving.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			base = strings.Fields(rest)[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("coordinator never announced its address (scan err %v)", sc.Err())
	}
	go func() { // keep draining so the coordinator never blocks on stderr
		for sc.Scan() {
		}
	}()

	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		workers[i] = exec.Command(migexp, "worker", "-connect", base)
		var werr bytes.Buffer
		workers[i].Stderr = &werr
		if err := workers[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator exited with %v", err)
	}
	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Errorf("worker %d exited with %v\nstderr: %s", i, err, w.Stderr)
		}
	}
	if !bytes.Equal(stdout.Bytes(), local) {
		t.Errorf("distributed -json manifest differs from local run (%d vs %d bytes)",
			stdout.Len(), len(local))
	}
}
