package filemig

// Smoke tests for the command-line tools: build each binary once and run
// it on a tiny workload, verifying the end-user surface (flags, stdin
// piping, output shape). Skipped under -short.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"filemig/internal/trace"
)

func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping cmd smoke tests in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"tracegen", "mssanalyze", "msssim", "migsim", "migexp"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func TestCmdPipelines(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, stdin []byte, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	// tracegen: generate a tiny simulated trace.
	traceTxt := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60", "-sim")
	if !bytes.HasPrefix(traceTxt, []byte("#filemig-trace")) {
		t.Fatalf("tracegen output missing header: %.60s", traceTxt)
	}
	lines := bytes.Count(traceTxt, []byte("\n"))
	if lines < 100 {
		t.Fatalf("tracegen produced only %d lines", lines)
	}

	// tracegen -raw: verbose log form.
	rawTxt := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "30", "-raw")
	if !bytes.Contains(rawTxt, []byte("MSCP: seq=")) {
		t.Error("raw log missing MSCP lines")
	}

	// mssanalyze over the piped trace.
	out := string(run("mssanalyze", traceTxt, "-i", "-", "-id", "table3", "-id", "figure8"))
	for _, want := range []string{"Table 3", "References", "Figure 8", "never read"} {
		if !strings.Contains(out, want) {
			t.Errorf("mssanalyze output missing %q", want)
		}
	}

	// msssim with write-behind over the same trace.
	out = string(run("msssim", traceTxt, "-i", "-", "-write-behind"))
	for _, want := range []string{"write-behind=true", "mscp", "operator", "tape mounts"} {
		if !strings.Contains(out, want) {
			t.Errorf("msssim output missing %q", want)
		}
	}

	// migsim policy comparison and coalescing over the trace.
	out = string(run("migsim", traceTxt, "-i", "-", "-capacity", "0.05"))
	for _, want := range []string{"policy comparison", "OPT", "STP^1.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("migsim output missing %q", want)
		}
	}
	out = string(run("migsim", traceTxt, "-i", "-", "-coalesce"))
	if !strings.Contains(out, "8h0m0s") {
		t.Errorf("migsim coalesce output missing 8h row:\n%s", out)
	}

	// tracegen -format binary, then every consumer auto-detects it.
	traceBin := run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60", "-format", "binary")
	if !bytes.HasPrefix(traceBin, []byte("#filemig-trace b1")) {
		t.Fatalf("binary tracegen output missing b1 header: %.40q", traceBin)
	}
	if len(traceBin) >= len(run("tracegen", nil, "-scale", "0.001", "-seed", "3", "-days", "60")) {
		t.Error("binary encoding not smaller than ascii")
	}
	fromBin := string(run("mssanalyze", traceBin, "-i", "-", "-id", "table4"))
	if !strings.Contains(fromBin, "Number of files") {
		t.Errorf("mssanalyze could not auto-detect binary input:\n%s", fromBin)
	}
	out = string(run("msssim", traceBin, "-i", "-", "-format", "binary"))
	if !strings.Contains(out, "tape mounts") {
		t.Errorf("msssim -format binary failed:\n%s", out)
	}

	// mssanalyze -stream must match the slice path byte for byte on the
	// shared experiments.
	slice := string(run("mssanalyze", traceBin, "-i", "-", "-id", "table3", "-id", "figure8"))
	streamed := string(run("mssanalyze", traceBin, "-i", "-", "-stream", "-workers", "3",
		"-shard-days", "7", "-id", "table3", "-id", "figure8"))
	if slice != streamed {
		t.Errorf("-stream output differs from slice path:\n--- slice ---\n%s\n--- stream ---\n%s",
			slice, streamed)
	}
}

// TestMssanalyzeB2Golden is the CLI acceptance gate for the b2 block
// format: the committed testdata/mini.b2 fixture (tracegen -scale
// 0.002 -seed 3 -days 120 -format b2) must analyse through the
// index-seek -stream path to exactly the committed golden report, and
// the slice path, the forced -format b2 path, and the piped-stdin
// sequential path must all render the same bytes. Regenerate with
// UPDATE_B2_GOLDEN=1.
func TestMssanalyzeB2Golden(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, stdin []byte, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		if stdin != nil {
			cmd.Stdin = bytes.NewReader(stdin)
		}
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	fixture := filepath.Join("testdata", "mini.b2")
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("#filemig-trace b2")) {
		t.Fatalf("fixture missing b2 header: %.40q", raw)
	}

	ids := []string{"-id", "table3", "-id", "table4", "-id", "figure8"}
	streamed := run("mssanalyze", nil,
		append([]string{"-i", fixture, "-stream", "-workers", "4", "-shard-days", "7"}, ids...)...)

	goldenPath := filepath.Join("testdata", "b2_golden.txt")
	if os.Getenv("UPDATE_B2_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, streamed, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(streamed))
	} else {
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed, golden) {
			t.Errorf("b2 stream report does not match testdata/b2_golden.txt:\n--- got ---\n%s\n--- golden ---\n%s",
				streamed, golden)
		}
	}

	// Every other route to the same records renders identically: the
	// slice path, the forced format on the index-seek path, and the
	// sequential reader over a pipe (stdin is not seekable).
	for _, tc := range []struct {
		name  string
		stdin []byte
		args  []string
	}{
		{"slice", nil, []string{"-i", fixture}},
		{"forced-b2", nil, []string{"-i", fixture, "-format", "b2", "-stream", "-workers", "2"}},
		{"stdin-stream", raw, []string{"-i", "-", "-stream", "-workers", "2"}},
	} {
		got := run("mssanalyze", tc.stdin, append(tc.args, ids...)...)
		if !bytes.Equal(got, streamed) {
			t.Errorf("%s path differs from the index-seek stream path:\n--- got ---\n%s\n--- stream ---\n%s",
				tc.name, got, streamed)
		}
	}

	// tracegen regenerates the fixture byte-identically, and msssim reads
	// b2 input.
	regen := filepath.Join(t.TempDir(), "regen.b2")
	run("tracegen", nil, "-scale", "0.002", "-seed", "3", "-days", "120", "-format", "b2", "-o", regen)
	if b, err := os.ReadFile(regen); err != nil || !bytes.Equal(b, raw) {
		t.Errorf("tracegen does not reproduce testdata/mini.b2 (err=%v, %d vs %d bytes)", err, len(b), len(raw))
	}
	if out := string(run("msssim", raw, "-i", "-")); !strings.Contains(out, "tape mounts") {
		t.Errorf("msssim could not read b2 input:\n%s", out)
	}
}

// TestMssanalyzeSnapshotMerge is the acceptance gate for the
// distributed-analysis surface: the paper workload encoded as two trace
// slice files, each analysed to an s1 snapshot by `mssanalyze
// -snapshot` (one slice via the slice path, one via -stream), then
// combined by `mssanalyze merge` — whose report must be byte-identical
// to analysing the unsplit trace, and must match the committed golden
// report testdata/snapshot_golden.txt.
func TestMssanalyzeSnapshotMerge(t *testing.T) {
	bin := buildTools(t)
	run := func(name string, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	// The paper workload, simulated for real latency columns, cut into
	// two binary slice files at an arbitrary record boundary (dedup
	// chains deliberately cross it).
	p, err := Run(Config{Scale: 0.001, Seed: 3, Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cut := len(p.Records)*2/3 + 1
	whole := filepath.Join(dir, "whole.b1")
	slices := []string{filepath.Join(dir, "s0.b1"), filepath.Join(dir, "s1.b1")}
	for path, recs := range map[string][]trace.Record{
		whole: p.Records, slices[0]: p.Records[:cut], slices[1]: p.Records[cut:],
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteAllFormat(f, recs, trace.FormatBinary); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Map: one snapshot per slice, exercising both producer paths.
	snaps := []string{filepath.Join(dir, "s0.s1"), filepath.Join(dir, "s1.s1")}
	run("mssanalyze", "-i", slices[0], "-snapshot", snaps[0])
	run("mssanalyze", "-i", slices[1], "-stream", "-workers", "3", "-shard-days", "7",
		"-snapshot", snaps[1])

	// Reduce: the merged report matches the unsplit analysis byte for
	// byte, and the committed golden file.
	ids := []string{"-id", "table3", "-id", "table4", "-id", "figure8", "-id", "figure9"}
	merged := run("mssanalyze", append([]string{"merge"}, append(ids, snaps...)...)...)
	direct := run("mssanalyze", append([]string{"-i", whole}, ids...)...)
	if !bytes.Equal(merged, direct) {
		t.Errorf("merged snapshot report differs from direct analysis:\n--- merged ---\n%s\n--- direct ---\n%s",
			merged, direct)
	}
	goldenPath := filepath.Join("testdata", "snapshot_golden.txt")
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, merged, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(merged))
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, golden) {
		t.Errorf("merged report does not match testdata/snapshot_golden.txt:\n--- got ---\n%s\n--- golden ---\n%s",
			merged, golden)
	}
}

// TestMigexpGoldenManifest is the acceptance gate for the experiment
// runner's end-user surface: one spec file drives a 2-scenario ×
// 3-policy × 3-capacity grid, and the JSON manifest it emits is
// byte-identical at every worker count.
func TestMigexpGoldenManifest(t *testing.T) {
	bin := buildTools(t)
	run := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "migexp"), args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("migexp %v: %v\nstderr: %s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}
	spec := filepath.Join("testdata", "quickgrid.json")

	// validate describes the plan without running it.
	plan := string(run("validate", spec))
	if !strings.Contains(plan, "2 sources × 3 policies × 3 capacities = 18 cells") {
		t.Fatalf("validate plan wrong:\n%s", plan)
	}

	// scenarios lists the full library.
	scen := string(run("scenarios"))
	for _, want := range []string{"paper-1993", "diurnal-interactive",
		"checkpoint-restart", "archive-coldscan"} {
		if !strings.Contains(scen, want) {
			t.Errorf("scenarios listing missing %s:\n%s", want, scen)
		}
	}

	// run at three worker counts: tables on stdout, manifests identical.
	dir := t.TempDir()
	var manifests [][]byte
	for i, workers := range []string{"1", "2", "8"} {
		out := filepath.Join(dir, "m"+workers+".json")
		tables := string(run("run", spec, "-workers", workers, "-o", out))
		if i == 0 {
			for _, want := range []string{"quickgrid", "paper-1993",
				"checkpoint-restart", "STP^1.4", "LRU", "OPT", "trace sha256"} {
				if !strings.Contains(tables, want) {
					t.Errorf("run tables missing %q:\n%s", want, tables)
				}
			}
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		manifests = append(manifests, b)
	}
	for i := 1; i < len(manifests); i++ {
		if !bytes.Equal(manifests[0], manifests[i]) {
			t.Fatalf("manifest differs between -workers 1 and -workers %d", []int{1, 2, 8}[i])
		}
	}

	// -json emits exactly the manifest bytes.
	if jsonOut := run("run", spec, "-workers", "2", "-json"); !bytes.Equal(jsonOut, manifests[0]) {
		t.Error("-json stdout differs from -o manifest file")
	}
}
