// Command miglint machine-checks the repository's correctness
// invariants: deterministic output (mapiter, detsource), exact shard
// merges (floatsum), near-zero-allocation hot paths (hotalloc), the
// ARCHITECTURE.md package layering (layering), and doc-comment coverage
// (doccomment). Each analyzer is specified in docs/lint.md.
//
// It runs two ways, sharing one type-checking path:
//
//	miglint ./...                 # standalone: re-execs go vet -vettool=itself
//	go vet -vettool=miglint ./... # as a vet tool, via cmd/go's vet.cfg protocol
//
// Analyzers are enabled by default and can be switched off per run
// (`miglint -hotalloc=false ./...`). Exit status: 0 clean, 1 internal
// error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"filemig/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("miglint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: miglint [-<analyzer>=false ...] <packages>\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	vFlag := fs.String("V", "", "print version and exit (cmd/go probes with -V=full)")
	flagsProbe := fs.Bool("flags", false, "print the analyzer flags as JSON (cmd/go's vet-tool probe)")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	fs.Parse(args)

	if *vFlag != "" {
		return printVersion()
	}
	if *flagsProbe {
		return printFlagsJSON(os.Stdout)
	}

	var active []*lint.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunVetCfg(rest[0], active)
	}
	return standalone(fs, rest)
}

// standalone re-execs the current binary through `go vet -vettool` so
// cmd/go resolves patterns, compiles dependencies, and feeds back one
// vet.cfg per package — a single type-checking path for both modes.
func standalone(fs *flag.FlagSet, patterns []string) int {
	if len(patterns) == 0 {
		fs.Usage()
		return 1
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
		return 1
	}
	vetArgs := []string{"vet", "-vettool=" + exe}
	// Forward analyzer switches the user set explicitly.
	fs.Visit(func(f *flag.Flag) {
		if f.Name != "V" && f.Name != "flags" {
			vetArgs = append(vetArgs, "-"+f.Name+"="+f.Value.String())
		}
	})
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
		return 1
	}
	return 0
}

// printVersion answers cmd/go's -V=full probe. The content hash of the
// binary itself serves as the buildID, so editing an analyzer and
// rebuilding invalidates cmd/go's cached vet results.
func printVersion() int {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("miglint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// printFlagsJSON answers cmd/go's -flags probe with the schema
// cmd/go/internal/vet expects: a JSON array of {Name, Bool, Usage}.
func printFlagsJSON(w io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range lint.Analyzers() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "miglint: %v\n", err)
		return 1
	}
	fmt.Fprintln(w, string(data))
	return 0
}
