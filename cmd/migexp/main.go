// Command migexp runs declarative migration experiments: a JSON spec
// names workload scenarios (or a trace file), a policy set, a capacity
// sweep and optional STP exponents, and migexp executes the full grid
// and emits a deterministic manifest. The spec format is documented in
// docs/experiments.md, the distributed mode in docs/distributed.md.
//
// Usage:
//
//	migexp run spec.json                 # execute; tables to stdout
//	migexp run spec.json -o manifest.json -workers 4
//	migexp run spec.json -json           # manifest JSON to stdout
//	migexp run spec.json -distributed -listen :9631 -journal ckpt/
//	migexp worker -connect http://host:9631
//	migexp validate spec.json            # parse, validate, show the plan
//	migexp scenarios                     # list the scenario library
//	migexp policies                      # list the policy grammar
//
// With -distributed, run serves the grid's cells to migexp worker
// processes instead of replaying locally: workers claim cells under
// expiring leases, dead workers' cells are re-queued, stragglers are
// speculatively re-dispatched, and the assembled manifest is
// byte-identical to a local run of the same spec. -journal makes the
// run resumable: Ctrl-C drains gracefully, and re-running with the same
// journal directory finishes the remaining cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"filemig/internal/dist"
	"filemig/internal/experiment"
	"filemig/internal/host"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migexp: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "worker":
		workerCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	case "scenarios":
		scenariosCmd()
	case "policies":
		fmt.Printf("policy grammar: %s\n", strings.Join(experiment.PolicyNames(), ", "))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Fatalf("unknown subcommand %q (want run, worker, validate, scenarios, policies)", os.Args[1])
	}
}

// usage prints the command synopsis and exits.
func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  migexp run spec.json [-workers N] [-o manifest.json] [-json]
  migexp run spec.json -distributed [-listen addr] [-journal dir] [-lease d] [-o manifest.json] [-json]
  migexp worker -connect http://host:port [-seed N]
  migexp validate spec.json
  migexp scenarios
  migexp policies`)
	os.Exit(2)
}

// interruptContext returns a context cancelled by the first SIGINT; the
// second interrupt kills the process the usual way.
func interruptContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// specArg extracts the spec path from a subcommand's arguments. The
// path may lead or trail the flags, but not split them (flag.Parse
// stops at the first non-flag argument, so a leading path is pulled out
// before parsing and anything after a mid-argument path is rejected).
func specArg(fs *flag.FlagSet, args []string) string {
	var spec string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		spec, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	switch {
	case spec == "" && fs.NArg() == 1:
		spec = fs.Arg(0)
	case spec != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(os.Stderr, "want exactly one spec file, with flags all before or all after it")
		os.Exit(2)
	}
	return spec
}

// runCmd executes a spec and writes its outputs.
func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("workers", -1, "worker pool override (0 = one per CPU, 1 = serial; default: spec's)")
	out := fs.String("o", "", "write the JSON manifest to this file")
	jsonOut := fs.Bool("json", false, "print the JSON manifest to stdout instead of tables")
	distributed := fs.Bool("distributed", false, "serve the grid to migexp worker processes instead of replaying locally")
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address (with -distributed)")
	journal := fs.String("journal", "", "journal directory for resumable runs (with -distributed)")
	lease := fs.Duration("lease", 0, "task lease before a worker is presumed dead (with -distributed; 0 = 15s)")
	path := specArg(fs, args)

	spec, err := experiment.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if *workers >= 0 {
		spec.Workers = *workers
	}
	// The experiment runner takes only explicit worker counts; the
	// per-CPU default is resolved here at the boundary.
	if spec.Workers <= 0 {
		spec.Workers = host.DefaultWorkers()
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := interruptContext()
	defer stop()
	var m *experiment.Manifest
	if *distributed {
		m = runDistributed(ctx, plan, *listen, *journal, *lease)
	} else {
		if *journal != "" || *lease != 0 {
			log.Fatal("-journal and -lease only apply with -distributed")
		}
		if m, err = experiment.RunPlan(ctx, plan); err != nil {
			log.Fatal(err)
		}
	}

	b, err := m.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		os.Stdout.Write(b)
		return
	}
	fmt.Print(experiment.RenderManifest(m))
	if *out != "" {
		fmt.Printf("\nmanifest: %s (%d bytes)\n", *out, len(b))
	}
}

// runDistributed serves the plan's cells to workers and assembles the
// manifest. An interrupt drains gracefully; with a journal the run is
// resumable.
func runDistributed(ctx context.Context, plan *experiment.Plan, listen, journal string, lease time.Duration) *experiment.Manifest {
	g, err := dist.NewGridCoordinator(plan, dist.Options{
		Lease:      lease,
		JournalDir: journal,
		Now:        host.Now,
		Seed:       host.Seed(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "migexp: coordinator listening on http://%s (%d cells", ln.Addr(), plan.Cells())
	if g.Resumed() > 0 {
		fmt.Fprintf(os.Stderr, ", %d already complete in journal", g.Resumed())
	}
	fmt.Fprintf(os.Stderr, "); start workers with: migexp worker -connect http://%s\n", ln.Addr())
	if err := g.Serve(ctx, ln); err != nil {
		if errors.Is(err, context.Canceled) && journal != "" {
			log.Fatalf("interrupted; completed cells are journaled in %s — re-run with the same -journal to resume", journal)
		}
		log.Fatal(err)
	}
	m, err := g.Manifest()
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// workerCmd joins a coordinator and executes tasks until the run
// completes.
func workerCmd(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	connect := fs.String("connect", "", "coordinator base URL (http://host:port)")
	seed := fs.Int64("seed", 0, "jitter seed (0 = process-unique)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *connect == "" || fs.NArg() != 0 {
		log.Fatal("worker needs -connect http://host:port and no positional arguments")
	}
	if *seed == 0 {
		*seed = host.Seed()
	}
	ctx, stop := interruptContext()
	defer stop()
	if err := dist.RunWorker(ctx, *connect, dist.WorkerOptions{Seed: *seed}); err != nil {
		log.Fatal(err)
	}
}

// validateCmd parses and validates a spec and describes its plan without
// generating a single record.
func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	path := specArg(fs, args)
	spec, err := experiment.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())
}

// scenariosCmd lists the workload scenario library.
func scenariosCmd() {
	for _, s := range workload.Scenarios() {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
	}
}
