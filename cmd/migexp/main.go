// Command migexp runs declarative migration experiments: a JSON spec
// names workload scenarios (or a trace file), a policy set, a capacity
// sweep and optional STP exponents, and migexp executes the full grid
// and emits a deterministic manifest. The spec format is documented in
// docs/experiments.md.
//
// Usage:
//
//	migexp run spec.json                 # execute; tables to stdout
//	migexp run spec.json -o manifest.json -workers 4
//	migexp run spec.json -json           # manifest JSON to stdout
//	migexp validate spec.json            # parse, validate, show the plan
//	migexp scenarios                     # list the scenario library
//	migexp policies                      # list the policy grammar
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"filemig/internal/experiment"
	"filemig/internal/host"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migexp: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	case "scenarios":
		scenariosCmd()
	case "policies":
		fmt.Printf("policy grammar: %s\n", strings.Join(experiment.PolicyNames(), ", "))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Fatalf("unknown subcommand %q (want run, validate, scenarios, policies)", os.Args[1])
	}
}

// usage prints the command synopsis and exits.
func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  migexp run spec.json [-workers N] [-o manifest.json] [-json]
  migexp validate spec.json
  migexp scenarios
  migexp policies`)
	os.Exit(2)
}

// specArg extracts the spec path from a subcommand's arguments. The
// path may lead or trail the flags, but not split them (flag.Parse
// stops at the first non-flag argument, so a leading path is pulled out
// before parsing and anything after a mid-argument path is rejected).
func specArg(fs *flag.FlagSet, args []string) string {
	var spec string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		spec, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	switch {
	case spec == "" && fs.NArg() == 1:
		spec = fs.Arg(0)
	case spec != "" && fs.NArg() == 0:
	default:
		fmt.Fprintln(os.Stderr, "want exactly one spec file, with flags all before or all after it")
		os.Exit(2)
	}
	return spec
}

// runCmd executes a spec and writes its outputs.
func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	workers := fs.Int("workers", -1, "worker pool override (0 = one per CPU, 1 = serial; default: spec's)")
	out := fs.String("o", "", "write the JSON manifest to this file")
	jsonOut := fs.Bool("json", false, "print the JSON manifest to stdout instead of tables")
	path := specArg(fs, args)

	spec, err := experiment.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if *workers >= 0 {
		spec.Workers = *workers
	}
	// The experiment runner takes only explicit worker counts; the
	// per-CPU default is resolved here at the boundary.
	if spec.Workers <= 0 {
		spec.Workers = host.DefaultWorkers()
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	m, err := experiment.RunPlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	b, err := m.EncodeJSON()
	if err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		os.Stdout.Write(b)
		return
	}
	fmt.Print(experiment.RenderManifest(m))
	if *out != "" {
		fmt.Printf("\nmanifest: %s (%d bytes)\n", *out, len(b))
	}
}

// validateCmd parses and validates a spec and describes its plan without
// generating a single record.
func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	path := specArg(fs, args)
	spec, err := experiment.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := experiment.BuildPlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())
}

// scenariosCmd lists the workload scenario library.
func scenariosCmd() {
	for _, s := range workload.Scenarios() {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
	}
}
