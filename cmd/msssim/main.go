// Command msssim replays a trace through the MSS simulator and reports
// the latency decomposition and per-resource queueing statistics, with an
// optional §6 write-behind mode.
//
// Usage:
//
//	msssim -i trace.txt
//	msssim -i trace.b1 -format binary
//	msssim -scale 0.01 -write-behind
//
// The input codec (ASCII v1, binary b1, or columnar b2) is
// auto-detected; -format forces one.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"filemig/internal/device"
	"filemig/internal/mss"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msssim: ")
	var (
		in     = flag.String("i", "", "input trace ('-' for stdin); empty = generate")
		scale  = flag.Float64("scale", 0.01, "scale when generating")
		seed   = flag.Int64("seed", 1, "seed")
		wb     = flag.Bool("write-behind", false, "enable eager write-behind (§6)")
		silo   = flag.Int("silo-drives", 0, "override silo drive count")
		ops    = flag.Int("operators", 0, "override operator count")
		format = flag.String("format", "auto", "input format: auto, ascii, binary or b2")
	)
	flag.Parse()
	if *in == "" && *format != "auto" {
		log.Fatal("-format only applies when reading a trace with -i")
	}

	var recs []trace.Record
	if *in == "" {
		res, err := workload.Generate(workload.DefaultConfig(*scale, *seed))
		if err != nil {
			log.Fatal(err)
		}
		recs = res.Records
	} else {
		f := os.Stdin
		if *in != "-" {
			var err error
			f, err = os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		src, err := trace.OpenStreamFlag(f, *format)
		if err != nil {
			log.Fatal(err)
		}
		if recs, err = trace.Collect(src); err != nil {
			log.Fatal(err)
		}
	}

	cfg := mss.DefaultConfig(*seed)
	cfg.WriteBehind = *wb
	if *silo > 0 {
		cfg.SiloDrives = *silo
	}
	if *ops > 0 {
		cfg.Operators = *ops
	}
	sim := mss.NewSimulator(cfg)
	out, err := sim.Replay(recs)
	if err != nil {
		log.Fatal(err)
	}

	byDev := map[device.Class]*stats.CDF{}
	var reads, writes stats.Moments
	for _, r := range out {
		if !r.OK() {
			continue
		}
		c := byDev[r.Device]
		if c == nil {
			c = &stats.CDF{}
			byDev[r.Device] = c
		}
		c.Add(r.Startup.Seconds())
		if r.Op == trace.Read {
			reads.Add(r.Startup.Seconds())
		} else {
			writes.Add(r.Startup.Seconds())
		}
	}
	fmt.Printf("replayed %d requests (write-behind=%v)\n\n", len(out), *wb)
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "device", "n", "median(s)", "mean(s)", "p90(s)")
	for _, dev := range []device.Class{device.ClassDisk, device.ClassSiloTape, device.ClassManualTape} {
		c := byDev[dev]
		if c == nil {
			continue
		}
		fmt.Printf("%-10s %10d %10.1f %10.1f %10.1f\n",
			dev, c.N(), c.Median(), c.Mean(), c.Quantile(0.9))
	}
	fmt.Printf("\nmean startup: reads %.1fs, writes %.1fs\n\n", reads.Mean(), writes.Mean())

	fmt.Printf("%-14s %10s %12s %12s %10s %6s\n",
		"resource", "arrivals", "mean wait", "max wait", "max queue", "util")
	for _, st := range sim.ResourceStats() {
		fmt.Printf("%-14s %10d %12s %12s %10d %5.1f%%\n",
			st.Name, st.Arrivals, st.MeanWait.Truncate(1e6), st.MaxWait.Truncate(1e6),
			st.MaxQueue, 100*st.Utilization)
	}
	done, skipped := sim.MountStats()
	fmt.Printf("\ntape mounts: %d performed, %d avoided via mounted cartridges\n", done, skipped)
}
