// Command migsim evaluates file migration policies against a trace: the
// policy comparison of §2.3/§6 (STP, LRU, size, FIFO, SAAC, random, OPT),
// capacity sweeps, the STP exponent sweep, and the eight-hour coalescing
// analysis.
//
// Usage:
//
//	migsim -scale 0.01                      # policy comparison at 2% cache
//	migsim -i trace.txt -capacity 0.015
//	migsim -scale 0.01 -sweep               # capacity sweep for STP^1.4
//	migsim -scale 0.01 -stp-sweep           # exponent ablation
//	migsim -scale 0.01 -coalesce            # §6 savable-request analysis
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"filemig"
	"filemig/internal/host"
	"filemig/internal/migration"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migsim: ")
	var (
		in       = flag.String("i", "", "input trace ('-' for stdin); empty = generate")
		scale    = flag.Float64("scale", 0.01, "scale when generating")
		seed     = flag.Int64("seed", 1, "seed")
		capFrac  = flag.Float64("capacity", 0.02, "cache capacity as a fraction of referenced data")
		sweep    = flag.Bool("sweep", false, "capacity sweep for STP^1.4")
		stpSweep = flag.Bool("stp-sweep", false, "STP exponent sweep at the given capacity")
		coalesce = flag.Bool("coalesce", false, "coalescing-window analysis")
		workers  = flag.Int("workers", 0, "sweep worker pool size (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()
	// The sweep runner takes only explicit worker counts; the per-CPU
	// default is resolved here at the boundary.
	if *workers <= 0 {
		*workers = host.DefaultWorkers()
	}

	recs, days := load(*in, *scale, *seed)
	accs := migration.AccessesFromRecords(recs)
	total := migration.TotalReferencedBytes(accs)
	fmt.Printf("%d accesses to %s of distinct data\n\n", len(accs), total)

	switch {
	case *coalesce:
		windows := []time.Duration{time.Hour, 4 * time.Hour, 8 * time.Hour,
			16 * time.Hour, 24 * time.Hour}
		fmt.Printf("%-10s %12s %12s %10s\n", "window", "requests", "savable", "fraction")
		for _, r := range migration.CoalesceSweep(recs, windows) {
			fmt.Printf("%-10s %12d %12d %9.1f%%\n",
				r.Window, r.Requests, r.Savable, 100*r.SavableFraction())
		}
	case *sweep:
		pts, err := migration.CapacitySweepWorkers(accs,
			[]float64{0.005, 0.01, 0.015, 0.02, 0.05, 0.10},
			func() migration.Policy { return migration.STP{K: 1.4} }, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(filemig.RenderSweep(pts))
	case *stpSweep:
		capacity := units.Bytes(float64(total) * *capFrac)
		fmt.Printf("STP exponent sweep at %.1f%% cache (%s)\n", 100**capFrac, capacity)
		pts, err := migration.STPExponentSweepWorkers(accs, capacity,
			[]float64{0, 0.5, 1.0, 1.4, 2.0, 4.0}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(filemig.RenderExponentSweep(pts))
	default:
		capacity := units.Bytes(float64(total) * *capFrac)
		fmt.Printf("policy comparison at %.1f%% cache (%s)\n", 100**capFrac, capacity)
		results, err := migration.ComparePoliciesWorkers(accs, capacity,
			filemig.StandardPolicies(accs), *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(filemig.RenderPolicyComparison(results, days))
	}
}

func load(in string, scale float64, seed int64) ([]trace.Record, float64) {
	if in == "" {
		res, err := workload.Generate(workload.DefaultConfig(scale, seed))
		if err != nil {
			log.Fatal(err)
		}
		return res.Records, float64(res.Config.Days)
	}
	f := os.Stdin
	if in != "-" {
		var err error
		f, err = os.Open(in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	recs, err := trace.ReadAll(f)
	if err != nil {
		log.Fatal(err)
	}
	days := 1.0
	if len(recs) > 1 {
		days = recs[len(recs)-1].Start.Sub(recs[0].Start).Hours() / 24
	}
	return recs, days
}
