// Command mssanalyze runs the paper's analysis over a trace and prints
// any or all of its tables and figures.
//
// Usage:
//
//	mssanalyze -i trace.txt -all
//	mssanalyze -i trace.b1 -stream -workers 8     # sharded streaming analysis
//	mssanalyze -scale 0.02 -id table3 -id figure7
//	tracegen -scale 0.01 -sim | mssanalyze -all
//
// With -scale and no -i, a synthetic trace is generated and simulated
// in-process. The input codec (ASCII v1 or binary b1) is auto-detected;
// -format forces one. With -stream, records are never materialized:
// the trace is cut into time shards analysed on a bounded worker pool
// (-workers, -shard-days), producing byte-identical output in shard-sized
// memory — the coalesce experiment is skipped there, as it needs the raw
// request list, and in generate mode the MSS simulation is skipped too
// (latency columns stay empty), since simulation replays the whole
// trace.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"filemig"
	"filemig/internal/core"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

type idList []string

func (l *idList) String() string { return fmt.Sprint(*l) }
func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mssanalyze: ")
	var ids idList
	var (
		in        = flag.String("i", "", "input trace file ('-' for stdin); empty = generate")
		scale     = flag.Float64("scale", 0.01, "scale when generating")
		seed      = flag.Int64("seed", 1, "seed when generating")
		all       = flag.Bool("all", false, "print every table and figure")
		stream    = flag.Bool("stream", false, "sharded streaming analysis (bounded memory)")
		workers   = flag.Int("workers", 0, "streaming analysis worker pool size (0 = one per CPU)")
		shardDays = flag.Int("shard-days", 0, "streaming shard width in days (0 = 28)")
		format    = flag.String("format", "auto", "input format: auto, ascii or binary")
	)
	flag.Var(&ids, "id", "experiment to print (table3, figure7, ...); repeatable")
	flag.Parse()
	if !*stream && (*workers != 0 || *shardDays != 0) {
		log.Fatal("-workers and -shard-days only apply with -stream")
	}
	if *in == "" && *format != "auto" {
		log.Fatal("-format only applies when reading a trace with -i")
	}

	var p *filemig.Pipeline
	streamed := false
	switch {
	case *in == "" && *stream:
		fmt.Fprintln(os.Stderr,
			"mssanalyze: note: -stream generates without the MSS simulator; latency columns (Table 3, Figure 3) will be empty")
		rep, err := filemig.RunStream(filemig.StreamConfig{
			Config:        filemig.Config{Scale: *scale, Seed: *seed},
			Workers:       *workers,
			ShardDuration: time.Duration(*shardDays) * 24 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		p = &filemig.Pipeline{Report: rep}
		streamed = true
	case *in == "":
		var err error
		p, err = filemig.Run(filemig.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	default:
		f := os.Stdin
		if *in != "-" {
			var err error
			f, err = os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		src, err := trace.OpenStreamFlag(f, *format)
		if err != nil {
			log.Fatal(err)
		}
		if *stream {
			rep, err := core.AnalyzeStream(core.StreamOptions{
				Options:       core.Options{DedupWindow: workload.DedupWindow},
				Workers:       *workers,
				ShardDuration: time.Duration(*shardDays) * 24 * time.Hour,
			}, src)
			if err != nil {
				log.Fatal(err)
			}
			p = &filemig.Pipeline{Report: rep}
			streamed = true
		} else {
			recs, err := trace.Collect(src)
			if err != nil {
				log.Fatal(err)
			}
			a := core.New(core.Options{DedupWindow: workload.DedupWindow})
			a.AddAll(recs)
			p = &filemig.Pipeline{Records: recs, Report: a.Report()}
		}
	}

	render := func(e filemig.Experiment) {
		if streamed && e.ID == "coalesce" {
			fmt.Printf("== %s ==\n(skipped: coalescing needs the raw request list; rerun without -stream)\n\n", e.Title)
			return
		}
		fmt.Printf("== %s ==\n%s\n", e.Title, e.Render(p))
	}
	if *all || len(ids) == 0 {
		for _, e := range filemig.Experiments() {
			render(e)
		}
		return
	}
	for _, id := range ids {
		e, ok := filemig.FindExperiment(id)
		if !ok {
			log.Fatalf("unknown experiment %q (try table3, figure7, periodicity, coalesce)", id)
		}
		render(e)
	}
}
