// Command mssanalyze runs the paper's analysis over a trace and prints
// any or all of its tables and figures — or, for distributed runs,
// saves the analysis as a mergeable s1 snapshot and merges snapshots
// back into one report.
//
// Usage:
//
//	mssanalyze -i trace.txt -all
//	mssanalyze -i trace.b1 -stream -workers 8     # sharded streaming analysis
//	mssanalyze -scale 0.02 -id table3 -id figure7
//	tracegen -scale 0.01 -sim | mssanalyze -all
//	mssanalyze -i slice0.b1 -snapshot s0.s1       # map: analyse one slice
//	mssanalyze merge [-id ...] s0.s1 s1.s1        # reduce: merge + report
//
// With -scale and no -i, a synthetic trace is generated and simulated
// in-process. The input codec (ASCII v1, binary b1, or columnar b2) is
// auto-detected; -format forces one. With -stream, records are never
// materialized: the trace is cut into time shards analysed on a bounded
// worker pool (-workers, -shard-days), producing byte-identical output
// in shard-sized memory — the coalesce experiment is skipped there, as
// it needs the raw request list, and in generate mode the MSS
// simulation is skipped too (latency columns stay empty), since
// simulation replays the whole trace. A named b2 file under -stream is
// opened through its trailing block index: shards are cut from index
// metadata without decoding skipped blocks, and blocks decode in
// parallel on the worker pool.
//
// With -snapshot, the analysis state is written to the named s1 file
// ('-' for stdout) instead of printing a report; trace slices may be
// analysed on different machines and their snapshots combined with the
// merge mode, whose report is byte-identical to analysing the
// concatenated trace in one process (docs/snapshots.md). Slices need
// not align with the eight-hour dedup window, but must be merged in
// trace time order. Merge arguments may be .s1 files, directories
// (their *.s1 files, sorted by name), or globs.
//
// With -distributed, a b2 input's block-index shards are served to
// mssanalyze worker processes under expiring leases and the returned
// snapshots merged into a report byte-identical to a local run — see
// docs/distributed.md:
//
//	mssanalyze -i trace.b2 -distributed -listen :9632 -all
//	mssanalyze worker -connect http://host:9632
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"filemig"
	"filemig/internal/core"
	"filemig/internal/dist"
	"filemig/internal/host"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

type idList []string

func (l *idList) String() string { return fmt.Sprint(*l) }
func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mssanalyze: ")
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		runWorker(os.Args[2:])
		return
	}
	var ids idList
	var (
		in          = flag.String("i", "", "input trace file ('-' for stdin); empty = generate")
		scale       = flag.Float64("scale", 0.01, "scale when generating")
		seed        = flag.Int64("seed", 1, "seed when generating")
		all         = flag.Bool("all", false, "print every table and figure")
		stream      = flag.Bool("stream", false, "sharded streaming analysis (bounded memory)")
		workers     = flag.Int("workers", 0, "streaming analysis worker pool size (0 = one per CPU)")
		shardDays   = flag.Int("shard-days", 0, "streaming shard width in days (0 = 28)")
		format      = flag.String("format", "auto", "input format: auto, ascii, binary or b2")
		snapshot    = flag.String("snapshot", "", "write an s1 analysis snapshot here ('-' for stdout) instead of reporting")
		distributed = flag.Bool("distributed", false, "serve a b2 input's shards to mssanalyze worker processes")
		listen      = flag.String("listen", "127.0.0.1:0", "coordinator listen address (with -distributed)")
		journal     = flag.String("journal", "", "journal directory for resumable runs (with -distributed)")
		lease       = flag.Duration("lease", 0, "task lease before a worker is presumed dead (with -distributed; 0 = 15s)")
	)
	flag.Var(&ids, "id", "experiment to print (table3, figure7, ...); repeatable")
	flag.Parse()
	if !*stream && !*distributed && (*workers != 0 || *shardDays != 0) {
		log.Fatal("-workers and -shard-days only apply with -stream or -distributed")
	}
	if !*distributed && (*listen != "127.0.0.1:0" || *journal != "" || *lease != 0) {
		log.Fatal("-listen, -journal and -lease only apply with -distributed")
	}
	// The deterministic analysis packages take only explicit worker
	// counts; the per-CPU default is resolved here at the boundary.
	if *stream && *workers <= 0 {
		*workers = host.DefaultWorkers()
	}
	if *in == "" && *format != "auto" {
		log.Fatal("-format only applies when reading a trace with -i")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *distributed {
		a := runDistributed(ctx, *in, *format, *listen, *journal, *lease,
			time.Duration(*shardDays)*24*time.Hour)
		if *snapshot != "" {
			if *all || len(ids) > 0 {
				log.Fatal("-snapshot replaces the report; drop -all/-id")
			}
			emitSnapshot(a, *snapshot)
			return
		}
		renderExperiments(&filemig.Pipeline{Report: a.Report()}, ids, *all, true)
		return
	}
	if *snapshot != "" {
		if *in == "" {
			log.Fatal("-snapshot needs a trace input (-i); snapshots of generated workloads carry no namespace tree")
		}
		if *all || len(ids) > 0 {
			log.Fatal("-snapshot replaces the report; drop -all/-id")
		}
		writeSnapshot(ctx, *in, *format, *snapshot, *stream, *workers, *shardDays)
		return
	}

	var p *filemig.Pipeline
	streamed := false
	switch {
	case *in == "" && *stream:
		fmt.Fprintln(os.Stderr,
			"mssanalyze: note: -stream generates without the MSS simulator; latency columns (Table 3, Figure 3) will be empty")
		rep, err := filemig.RunStreamContext(ctx, filemig.StreamConfig{
			Config:        filemig.Config{Scale: *scale, Seed: *seed},
			Workers:       *workers,
			ShardDuration: time.Duration(*shardDays) * 24 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		p = &filemig.Pipeline{Report: rep}
		streamed = true
	case *in == "":
		var err error
		p, err = filemig.Run(filemig.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	default:
		if *stream && *in != "-" && *format == "auto" {
			// The facade picks the fastest path the file's format allows:
			// b2 goes through the index-seek block-parallel analysis, v1
			// and b1 through the sharded streaming path.
			rep, err := filemig.AnalyzeTraceFileContext(ctx, *in, *workers,
				time.Duration(*shardDays)*24*time.Hour)
			if err != nil {
				log.Fatal(err)
			}
			p = &filemig.Pipeline{Report: rep}
			streamed = true
			break
		}
		if *stream {
			if bf, bfile := openB2Indexed(*in, *format); bf != nil {
				defer bfile.Close()
				rep, err := core.AnalyzeB2(ctx, core.B2Options{StreamOptions: core.StreamOptions{
					Options:       core.Options{DedupWindow: workload.DedupWindow},
					Workers:       *workers,
					ShardDuration: time.Duration(*shardDays) * 24 * time.Hour,
				}}, bf)
				if err != nil {
					log.Fatal(err)
				}
				p = &filemig.Pipeline{Report: rep}
				streamed = true
				break
			}
		}
		f := os.Stdin
		if *in != "-" {
			var err error
			f, err = os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		src, err := trace.OpenStreamFlag(f, *format)
		if err != nil {
			log.Fatal(err)
		}
		if *stream {
			rep, err := core.AnalyzeStream(ctx, core.StreamOptions{
				Options:       core.Options{DedupWindow: workload.DedupWindow},
				Workers:       *workers,
				ShardDuration: time.Duration(*shardDays) * 24 * time.Hour,
			}, src)
			if err != nil {
				log.Fatal(err)
			}
			p = &filemig.Pipeline{Report: rep}
			streamed = true
		} else {
			recs, err := trace.Collect(src)
			if err != nil {
				log.Fatal(err)
			}
			a := core.New(core.Options{DedupWindow: workload.DedupWindow})
			a.AddAll(recs)
			p = &filemig.Pipeline{Records: recs, Report: a.Report()}
		}
	}

	renderExperiments(p, ids, *all, streamed)
}

// renderExperiments prints the selected (or all) experiments from a
// finished pipeline. Without the raw request list — the streamed and
// merged paths — the coalesce experiment is skipped with a note.
func renderExperiments(p *filemig.Pipeline, ids idList, all, noRecords bool) {
	render := func(e filemig.Experiment) {
		if noRecords && e.ID == "coalesce" {
			fmt.Printf("== %s ==\n(skipped: coalescing needs the raw request list; rerun without -stream on the full trace)\n\n", e.Title)
			return
		}
		fmt.Printf("== %s ==\n%s\n", e.Title, e.Render(p))
	}
	if all || len(ids) == 0 {
		for _, e := range filemig.Experiments() {
			render(e)
		}
		return
	}
	for _, id := range ids {
		e, ok := filemig.FindExperiment(id)
		if !ok {
			log.Fatalf("unknown experiment %q (try table3, figure7, periodicity, coalesce)", id)
		}
		render(e)
	}
}

// openB2Indexed opens a named trace input through its b2 block index
// when the format flag allows it. It returns nils — fall back to the
// sequential stream path — for stdin, for a format forced to another
// codec, and for auto-format inputs without a b2 header; a forced-b2
// input that fails to open, or a b2-headed file whose index is broken,
// is fatal rather than silently re-read sequentially.
func openB2Indexed(in, format string) (*trace.B2File, *os.File) {
	if in == "-" {
		return nil, nil
	}
	if format != "auto" {
		wf, err := trace.ParseFormat(format)
		if err != nil {
			log.Fatal(err)
		}
		if wf != trace.FormatB2 {
			return nil, nil
		}
	}
	f, err := os.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	bf, err := trace.OpenB2File(f, st.Size())
	if err != nil {
		f.Close()
		if format == "auto" && errors.Is(err, trace.ErrNotB2) {
			return nil, nil
		}
		log.Fatal(err)
	}
	return bf, f
}

// writeSnapshot analyses the trace input with the journal enabled and
// serializes the analysis as an s1 snapshot — the map step of a
// distributed run. A named b2 input under -stream takes the index-seek
// parallel path; the snapshot bytes are identical either way.
func writeSnapshot(ctx context.Context, in, format, out string, stream bool, workers, shardDays int) {
	opts := core.Options{DedupWindow: workload.DedupWindow, Journal: true}
	shardDur := time.Duration(shardDays) * 24 * time.Hour
	var a *core.Analysis
	var err error
	var bf *trace.B2File
	if stream {
		var bfile *os.File
		if bf, bfile = openB2Indexed(in, format); bf != nil {
			defer bfile.Close()
			a, err = core.AccumulateB2(ctx, core.B2Options{StreamOptions: core.StreamOptions{
				Options:       opts,
				Workers:       workers,
				ShardDuration: shardDur,
			}}, bf)
		}
	}
	if bf == nil {
		f := os.Stdin
		if in != "-" {
			f, err = os.Open(in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		var src trace.Stream
		src, err = trace.OpenStreamFlag(f, format)
		if err != nil {
			log.Fatal(err)
		}
		if stream {
			a, err = core.AccumulateStream(ctx, core.StreamOptions{
				Options:       opts,
				Workers:       workers,
				ShardDuration: shardDur,
			}, src)
		} else {
			var recs []trace.Record
			recs, err = trace.Collect(src)
			if err == nil {
				a = core.New(opts)
				a.AddAll(recs)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	emitSnapshot(a, out)
}

// emitSnapshot serializes an analysis as an s1 snapshot to the named
// file ('-' for stdout).
func emitSnapshot(a *core.Analysis, out string) {
	w := os.Stdout
	if out != "-" {
		var err error
		w, err = os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := a.WriteSnapshot(w); err != nil {
		log.Fatal(err)
	}
	if out != "-" {
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// runDistributed serves a b2 input's block-index shards to mssanalyze
// worker processes and returns the merged analysis. An interrupt drains
// gracefully; with a journal the run is resumable.
func runDistributed(ctx context.Context, in, format, listen, journal string, lease, shard time.Duration) *core.Analysis {
	if in == "" || in == "-" {
		log.Fatal("-distributed needs a named trace file (-i); workers open the same path")
	}
	bf, bfile := openB2Indexed(in, format)
	if bf == nil {
		log.Fatalf("%s is not a b2 trace; -distributed shards along the b2 block index", in)
	}
	defer bfile.Close()
	st, err := bfile.Stat()
	if err != nil {
		log.Fatal(err)
	}
	b, err := dist.NewB2ShardCoordinator(dist.B2ShardConfig{
		Path:          in,
		File:          bf,
		Size:          st.Size(),
		DedupWindow:   workload.DedupWindow,
		ShardDuration: shard,
	}, dist.Options{
		Lease:      lease,
		JournalDir: journal,
		Now:        host.Now,
		Seed:       host.Seed(),
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mssanalyze: coordinator listening on http://%s", ln.Addr())
	if b.Resumed() > 0 {
		fmt.Fprintf(os.Stderr, " (%d shards already complete in journal)", b.Resumed())
	}
	fmt.Fprintf(os.Stderr, "; start workers with: mssanalyze worker -connect http://%s\n", ln.Addr())
	if err := b.Serve(ctx, ln); err != nil {
		if errors.Is(err, context.Canceled) && journal != "" {
			log.Fatalf("interrupted; completed shards are journaled in %s — re-run with the same -journal to resume", journal)
		}
		log.Fatal(err)
	}
	a, err := b.Analysis()
	if err != nil {
		log.Fatal(err)
	}
	return a
}

// runWorker joins a coordinator and executes shard tasks until the run
// completes.
func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mssanalyze worker -connect http://host:port [-seed N]")
		fs.PrintDefaults()
	}
	connect := fs.String("connect", "", "coordinator base URL (http://host:port)")
	seed := fs.Int64("seed", 0, "jitter seed (0 = process-unique)")
	fs.Parse(args)
	if *connect == "" || fs.NArg() != 0 {
		log.Fatal("worker needs -connect http://host:port and no positional arguments")
	}
	if *seed == 0 {
		*seed = host.Seed()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := dist.RunWorker(ctx, *connect, dist.WorkerOptions{Seed: *seed}); err != nil {
		log.Fatal(err)
	}
}

// runMerge implements the merge mode: load s1 snapshots in trace order,
// merge them, and report. Arguments may be .s1 files, directories
// (their *.s1 entries, sorted by name) or globs; flags come before
// them. A corrupt snapshot is reported with the offending filename.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mssanalyze merge [-all] [-id table3 ...] a.s1 dir/ 'shard*.s1' ...")
		fs.PrintDefaults()
	}
	var ids idList
	all := fs.Bool("all", false, "print every table and figure")
	fs.Var(&ids, "id", "experiment to print (table3, figure7, ...); repeatable")
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("merge needs at least one .s1 snapshot file, directory or glob")
	}
	files := expandSnapshotArgs(fs.Args())
	if len(files) == 0 {
		log.Fatalf("no .s1 snapshots match %s", strings.Join(fs.Args(), " "))
	}
	m := core.NewSnapshotMerger()
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		err = m.Add(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	a, err := m.Analysis()
	if err != nil {
		log.Fatal(err)
	}
	renderExperiments(&filemig.Pipeline{Report: a.Report()}, ids, *all, true)
}

// expandSnapshotArgs turns merge's arguments into a snapshot file list:
// a directory contributes its *.s1 entries sorted by name, an argument
// with glob metacharacters its sorted matches, and anything else is
// taken as a literal filename. Snapshots merge in trace time order, so
// expansion preserves argument order and sorts only within each
// argument.
func expandSnapshotArgs(args []string) []string {
	var files []string
	for _, arg := range args {
		switch st, err := os.Stat(arg); {
		case err == nil && st.IsDir():
			matches, err := filepath.Glob(filepath.Join(arg, "*.s1"))
			if err != nil {
				log.Fatal(err)
			}
			sort.Strings(matches)
			files = append(files, matches...)
		case strings.ContainsAny(arg, "*?["):
			matches, err := filepath.Glob(arg)
			if err != nil {
				log.Fatalf("%s: %v", arg, err)
			}
			sort.Strings(matches)
			files = append(files, matches...)
		default:
			files = append(files, arg)
		}
	}
	return files
}
