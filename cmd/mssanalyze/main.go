// Command mssanalyze runs the paper's analysis over a trace and prints
// any or all of its tables and figures.
//
// Usage:
//
//	mssanalyze -i trace.txt -all
//	mssanalyze -scale 0.02 -id table3 -id figure7
//	tracegen -scale 0.01 -sim | mssanalyze -all
//
// With -scale and no -i, a synthetic trace is generated and simulated
// in-process.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"filemig"
	"filemig/internal/core"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

type idList []string

func (l *idList) String() string { return fmt.Sprint(*l) }
func (l *idList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mssanalyze: ")
	var ids idList
	var (
		in    = flag.String("i", "", "input trace file ('-' for stdin); empty = generate")
		scale = flag.Float64("scale", 0.01, "scale when generating")
		seed  = flag.Int64("seed", 1, "seed when generating")
		all   = flag.Bool("all", false, "print every table and figure")
	)
	flag.Var(&ids, "id", "experiment to print (table3, figure7, ...); repeatable")
	flag.Parse()

	var p *filemig.Pipeline
	if *in == "" {
		var err error
		p, err = filemig.Run(filemig.Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		f := os.Stdin
		if *in != "-" {
			var err error
			f, err = os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
		}
		recs, err := trace.ReadAll(f)
		if err != nil {
			log.Fatal(err)
		}
		a := core.New(core.Options{DedupWindow: workload.DedupWindow})
		a.AddAll(recs)
		p = &filemig.Pipeline{Records: recs, Report: a.Report()}
	}

	if *all || len(ids) == 0 {
		for _, e := range filemig.Experiments() {
			fmt.Printf("== %s ==\n%s\n", e.Title, e.Render(p))
		}
		return
	}
	for _, id := range ids {
		e, ok := filemig.FindExperiment(id)
		if !ok {
			log.Fatalf("unknown experiment %q (try table3, figure7, periodicity, coalesce)", id)
		}
		fmt.Printf("== %s ==\n%s\n", e.Title, e.Render(p))
	}
}
