// Command tracegen synthesizes an NCAR-like mass-storage trace in the
// paper's compact format (§4.2) and writes it to a file or stdout.
//
// Usage:
//
//	tracegen -scale 0.02 -seed 1 -o trace.txt
//	tracegen -scale 0.01 -sim           # with simulated latencies
//	tracegen -scale 0.001 -raw          # verbose system-log form (§4.1)
//
// Scale 1.0 reproduces the paper's two-year, ~3.5M-request trace; start
// small.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"filemig/internal/mss"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		scale    = flag.Float64("scale", 0.01, "workload scale relative to the paper (0,1]")
		seed     = flag.Int64("seed", 1, "deterministic RNG seed")
		days     = flag.Int("days", workload.PaperSpanDays, "trace length in days")
		out      = flag.String("o", "-", "output file ('-' for stdout)")
		sim      = flag.Bool("sim", false, "replay through the MSS simulator to fill latencies")
		raw      = flag.Bool("raw", false, "emit the verbose system-log format instead")
		noBursts = flag.Bool("no-bursts", false, "disable session burst packing")
		noHoli   = flag.Bool("no-holidays", false, "disable the holiday calendar")
	)
	flag.Parse()

	cfg := workload.DefaultConfig(*scale, *seed)
	cfg.Days = *days
	cfg.Bursts = !*noBursts
	cfg.Holidays = !*noHoli
	res, err := workload.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	recs := res.Records
	if *sim {
		s := mss.NewSimulator(mss.DefaultConfig(*seed))
		recs, err = s.Replay(recs)
		if err != nil {
			log.Fatal(err)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if *raw {
		err = trace.WriteRawLog(w, recs)
	} else {
		err = trace.WriteAll(w, recs)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d records over %d days (%d files, %d users)\n",
		len(recs), cfg.Days, cfg.Files, cfg.Users)
}
