// Command tracegen synthesizes an NCAR-like mass-storage trace in the
// paper's compact ASCII format (§4.2), the binary b1 format, or the
// columnar b2 block format and writes it to a file or stdout.
//
// Usage:
//
//	tracegen -scale 0.02 -seed 1 -o trace.txt
//	tracegen -scale 0.05 -format binary -o trace.b1
//	tracegen -scale 0.05 -format b2 -o trace.b2   # seekable block format
//	tracegen -scale 0.01 -sim           # with simulated latencies
//	tracegen -scale 0.001 -raw          # verbose system-log form (§4.1)
//
// Scale 1.0 reproduces the paper's two-year, ~3.5M-request trace; start
// small. Without -sim or -raw, records stream from the generator into
// the encoder one at a time, so large traces never materialize in
// memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"filemig/internal/mss"
	"filemig/internal/trace"
	"filemig/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		scale    = flag.Float64("scale", 0.01, "workload scale relative to the paper (0,1]")
		seed     = flag.Int64("seed", 1, "deterministic RNG seed")
		days     = flag.Int("days", workload.PaperSpanDays, "trace length in days")
		out      = flag.String("o", "-", "output file ('-' for stdout)")
		format   = flag.String("format", "ascii", "trace wire format: ascii, binary or b2")
		sim      = flag.Bool("sim", false, "replay through the MSS simulator to fill latencies")
		raw      = flag.Bool("raw", false, "emit the verbose system-log format instead")
		noBursts = flag.Bool("no-bursts", false, "disable session burst packing")
		noHoli   = flag.Bool("no-holidays", false, "disable the holiday calendar")
	)
	flag.Parse()

	wireFormat, err := trace.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	if *raw && wireFormat != trace.FormatASCII {
		log.Fatalf("-raw emits the verbose ASCII system-log form; -format %s does not apply", wireFormat)
	}
	cfg := workload.DefaultConfig(*scale, *seed)
	cfg.Days = *days
	cfg.Bursts = !*noBursts
	cfg.Holidays = !*noHoli

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	var n int64
	if *sim || *raw {
		// The simulator and the raw-log renderer both need the whole
		// trace; materialize it.
		res, err := workload.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		recs := res.Records
		if *sim {
			s := mss.NewSimulator(mss.DefaultConfig(*seed))
			recs, err = s.Replay(recs)
			if err != nil {
				log.Fatal(err)
			}
		}
		if *raw {
			err = trace.WriteRawLog(w, recs)
		} else {
			err = trace.WriteAllFormat(w, recs, wireFormat)
		}
		if err != nil {
			log.Fatal(err)
		}
		n = int64(len(recs))
	} else {
		// Streaming path: generator → encoder, one record at a time. The
		// epoch is the first record's start, matching WriteAllFormat, so
		// the two paths quantize deltas on the same one-second grid.
		sr, err := workload.GenerateStream(cfg)
		if err != nil {
			log.Fatal(err)
		}
		first, err := sr.Stream.Next()
		if err != nil && err != io.EOF {
			log.Fatal(err)
		}
		if err == nil {
			tw := trace.NewFormatWriterEpoch(w, wireFormat, first.Start)
			if err := tw.Write(&first); err != nil {
				log.Fatal(err)
			}
			if _, err := trace.Copy(tw, sr.Stream); err != nil {
				log.Fatal(err)
			}
			if err := tw.Flush(); err != nil {
				log.Fatal(err)
			}
			n = tw.Count()
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d records over %d days (%d files, %d users)\n",
		n, cfg.Days, cfg.Files, cfg.Users)
}
