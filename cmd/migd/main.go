// Command migd runs the live ingest daemon: an HTTP server that
// accumulates access records as they happen, answers per-file
// migrate/keep/prefetch queries and renders the live analysis report,
// and checkpoints its state so a restart resumes exactly.
//
// Usage:
//
//	migd [-listen addr] [-checkpoint path] [-checkpoint-every n]
//	     [-checkpoint-interval d] [-dedup d] [-shard d]
//	     [-stp-k k] [-migrate-after d]
//
// With -checkpoint, migd restores from the file at startup when it
// exists, checkpoints every -checkpoint-every ingested records and
// every -checkpoint-interval of wall time, and writes a final
// checkpoint after draining in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"filemig/internal/core"
	"filemig/internal/host"
	"filemig/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("migd: ")
	var (
		listen       = flag.String("listen", "127.0.0.1:8477", "address to serve HTTP on")
		checkpoint   = flag.String("checkpoint", "", "checkpoint file: restored at startup, written on cadence and shutdown")
		ckptEvery    = flag.Int64("checkpoint-every", 0, "checkpoint after this many ingested records (0 disables)")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "checkpoint on this wall-time interval (0 disables)")
		dedup        = flag.Duration("dedup", 0, "per-file dedup window (0 means the paper's eight hours)")
		shardDur     = flag.Duration("shard", 0, "ingest shard (lock stripe) time width (0 means one week)")
		stpK         = flag.Float64("stp-k", 0, "STP rank exponent for /v1/file (0 means 1.4)")
		migrateAfter = flag.Duration("migrate-after", 0, "idle age at which /v1/file says migrate (0 means one week)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: migd [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*listen, *checkpoint, *ckptEvery, *ckptInterval, *dedup, *shardDur, *stpK, *migrateAfter); err != nil {
		log.Fatal(err)
	}
}

// run builds, restores, serves, drains, and finally checkpoints the
// daemon.
func run(listen, checkpoint string, ckptEvery int64, ckptInterval, dedup, shardDur time.Duration, stpK float64, migrateAfter time.Duration) error {
	s, err := serve.NewServer(serve.Config{
		Opts:            core.Options{DedupWindow: dedup},
		ShardDuration:   shardDur,
		CheckpointPath:  checkpoint,
		CheckpointEvery: ckptEvery,
		Now:             host.Now,
		STPK:            stpK,
		MigrateAfter:    migrateAfter,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	if checkpoint != "" {
		data, err := os.ReadFile(checkpoint)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First start: nothing to resume.
		case err != nil:
			return err
		default:
			if err := s.RestoreCheckpoint(data); err != nil {
				return err
			}
			st := s.StatsNow()
			log.Printf("restored %d records in %d segments from %s", st.Records, st.Segments, checkpoint)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: listen, Handler: s}
	if ckptInterval > 0 && checkpoint != "" {
		go func() {
			t := time.NewTicker(ckptInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if err := s.Checkpoint(); err != nil {
						log.Printf("interval checkpoint: %v", err)
					}
				}
			}
		}()
	}
	go func() {
		<-ctx.Done()
		log.Printf("shutting down: draining in-flight requests")
		drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(drainCtx); err != nil {
			log.Printf("drain: %v", err)
		}
	}()

	log.Printf("serving on %s", listen)
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if checkpoint != "" {
		if err := s.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		log.Printf("final checkpoint written to %s", checkpoint)
	}
	return nil
}
