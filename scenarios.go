package filemig

import (
	"context"

	"filemig/internal/experiment"
	"filemig/internal/workload"
)

// This file is the facade over the experiment layer: the workload
// scenario library and the declarative spec → plan → grid → manifest
// runner (internal/experiment), the machinery behind cmd/migexp and
// examples/capacityplan. See docs/experiments.md for the spec format.

// Scenarios returns the named workload scenario library: presets
// (paper-1993, diurnal-interactive, checkpoint-restart, archive-coldscan)
// selectable by name in experiment specs.
func Scenarios() []workload.Scenario { return workload.Scenarios() }

// ScenarioConfig builds the named scenario's generator configuration at
// the given scale and seed.
func ScenarioConfig(name string, scale float64, seed int64) (workload.Config, error) {
	return workload.ScenarioConfig(name, scale, seed)
}

// The experiment types are re-exported as aliases so consumers outside
// the module can construct specs and read manifests through the facade
// alone — internal/experiment itself cannot be imported from elsewhere.

// ExperimentSpec is a declarative experiment: workload scenarios (or a
// trace file) × policies × capacities × STP exponents. See
// docs/experiments.md for every field, default and validation rule.
type ExperimentSpec = experiment.Spec

// ExperimentManifest is an executed experiment's deterministic result
// document.
type ExperimentManifest = experiment.Manifest

// ExperimentScenarioResult is one workload source's block of an
// ExperimentManifest.
type ExperimentScenarioResult = experiment.ScenarioResult

// LoadExperiment parses a JSON experiment spec from disk.
func LoadExperiment(path string) (*ExperimentSpec, error) {
	return experiment.ParseFile(path)
}

// RunExperiment executes a declarative experiment spec — every workload
// scenario × policy × capacity cell, fanned over the bounded worker
// pool — and returns its deterministic manifest.
func RunExperiment(spec *ExperimentSpec) (*ExperimentManifest, error) {
	return RunExperimentContext(context.Background(), spec)
}

// RunExperimentContext is RunExperiment with cancellation: a cancelled
// ctx aborts between grid cells and surfaces ctx's error; it never
// changes the manifest.
func RunExperimentContext(ctx context.Context, spec *ExperimentSpec) (*ExperimentManifest, error) {
	return experiment.Run(ctx, spec)
}

// RenderExperiment renders a manifest as the human-readable per-scenario
// miss-ratio tables.
func RenderExperiment(m *ExperimentManifest) string {
	return experiment.RenderManifest(m)
}
