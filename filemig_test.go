package filemig

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"filemig/internal/core"
	"filemig/internal/migration"
	"filemig/internal/trace"
)

var pipeOnce struct {
	sync.Once
	p   *Pipeline
	err error
}

func pipeline(t *testing.T) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipeOnce.p, pipeOnce.err = Run(Config{Scale: 0.01, Seed: 5})
	})
	if pipeOnce.err != nil {
		t.Fatalf("Run: %v", pipeOnce.err)
	}
	return pipeOnce.p
}

func TestRunEndToEnd(t *testing.T) {
	p := pipeline(t)
	if len(p.Records) == 0 {
		t.Fatal("no records")
	}
	if p.Report == nil || p.Sim == nil || p.Workload == nil {
		t.Fatal("pipeline pieces missing")
	}
	// Latencies filled by the simulator.
	okWithLatency := 0
	for _, r := range p.Records {
		if r.OK() && r.Startup > 0 {
			okWithLatency++
		}
	}
	if okWithLatency < len(p.Records)/2 {
		t.Errorf("only %d/%d records carry simulated latencies", okWithLatency, len(p.Records))
	}
}

func TestRunSkipSimulation(t *testing.T) {
	p, err := Run(Config{Scale: 0.002, Seed: 6, SkipSimulation: true, Days: 60})
	if err != nil {
		t.Fatal(err)
	}
	if p.Sim != nil {
		t.Error("SkipSimulation should leave Sim nil")
	}
	for _, r := range p.Records {
		if r.Startup != 0 {
			t.Fatal("latencies should be zero without simulation")
		}
	}
}

func TestRunStreamMatchesSkipSimulation(t *testing.T) {
	cfg := Config{Scale: 0.003, Seed: 11, Days: 90, SkipSimulation: true}
	p, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunStream(StreamConfig{Config: cfg, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := core.RenderTable3(p.Report.Table3) + core.RenderTable4(p.Report.Table4) +
		core.RenderFigure8(p.Report.Figure8)
	got := core.RenderTable3(rep.Table3) + core.RenderTable4(rep.Table4) +
		core.RenderFigure8(rep.Figure8)
	if want != got {
		t.Fatalf("RunStream diverged from Run:\n--- Run ---\n%s\n--- RunStream ---\n%s", want, got)
	}
	if rep.Table3.GrandTotal == 0 {
		t.Fatal("RunStream produced an empty report")
	}
}

// TestAnalyzeTraceFileFormats checks the facade picks a working path
// for every on-disk format: the same workload written as ascii, b1,
// and b2 files must analyse to identical reports, with the b2 file
// going through the index-seek path.
func TestAnalyzeTraceFileFormats(t *testing.T) {
	res, err := Run(Config{Scale: 0.003, Seed: 11, Days: 90, SkipSimulation: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var reports []string
	for _, f := range []trace.Format{trace.FormatASCII, trace.FormatBinary, trace.FormatB2} {
		path := filepath.Join(dir, "trace."+f.String())
		w, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteAllFormat(w, res.Records, f); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rep, err := AnalyzeTraceFile(path, 3, 0)
		if err != nil {
			t.Fatalf("%v: AnalyzeTraceFile: %v", f, err)
		}
		if rep.Table3.GrandTotal != int64(len(res.Records)) {
			t.Fatalf("%v: analysed %d records, want %d", f, rep.Table3.GrandTotal, len(res.Records))
		}
		reports = append(reports, core.RenderTable3(rep.Table3)+core.RenderTable4(rep.Table4)+
			core.RenderFigure8(rep.Figure8))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report %d differs from report 0:\n%s\n---\n%s", i, reports[i], reports[0])
		}
	}
	if _, err := AnalyzeTraceFile(filepath.Join(dir, "missing"), 1, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunStreamValidatesScale(t *testing.T) {
	if _, err := RunStream(StreamConfig{Config: Config{Scale: 0}}); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestRunValidatesScale(t *testing.T) {
	if _, err := Run(Config{Scale: 0}); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := Run(Config{Scale: 1.2}); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestRunOverrides(t *testing.T) {
	off := false
	p, err := Run(Config{Scale: 0.002, Seed: 7, Days: 30, SkipSimulation: true,
		Bursts: &off, Holidays: &off})
	if err != nil {
		t.Fatal(err)
	}
	if p.Workload.Config.Bursts || p.Workload.Config.Holidays {
		t.Error("overrides not applied")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "figure1", "figure2", "table3", "table4",
		"figure3", "figure4", "figure5", "figure6", "figure7", "figure8",
		"figure9", "figure10", "figure11", "figure12", "periodicity", "coalesce",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, exps[i].ID, id)
		}
	}
	if _, ok := FindExperiment("table3"); !ok {
		t.Error("FindExperiment failed for table3")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("FindExperiment should miss unknown IDs")
	}
}

func TestAllExperimentsRender(t *testing.T) {
	p := pipeline(t)
	for _, e := range Experiments() {
		out := e.Render(p)
		if len(out) < 30 {
			t.Errorf("experiment %s rendered %d bytes", e.ID, len(out))
		}
	}
}

func TestCoalesceNearOneThird(t *testing.T) {
	p := pipeline(t)
	r := p.Coalesce()
	frac := r.SavableFraction()
	// §6: "About one third of all requests came within eight hours of
	// another request for the same file."
	if frac < 0.22 || frac > 0.45 {
		t.Errorf("savable fraction = %.3f, want ~1/3", frac)
	}
}

func TestStandardPoliciesAndComparison(t *testing.T) {
	p := pipeline(t)
	accs := p.Accesses()
	if len(accs) == 0 {
		t.Fatal("no accesses")
	}
	capacity := migration.TotalReferencedBytes(accs) / 50 // 2% staging disk
	results, err := migration.ComparePolicies(accs, capacity, StandardPolicies(accs))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]migration.CacheResult{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	// OPT must be the best or tied-best.
	if results[0].Policy != "OPT" &&
		byName["OPT"].MissRatio() > results[0].MissRatio()+0.01 {
		t.Errorf("OPT (%.3f) should lead; got %s (%.3f)",
			byName["OPT"].MissRatio(), results[0].Policy, results[0].MissRatio())
	}
	// STP^1.4 should beat largest-first and random, per Smith/Lawrie.
	stp := byName["STP^1.4"].MissRatio()
	if stp > byName["largest-first"].MissRatio() {
		t.Errorf("STP^1.4 (%.3f) should beat largest-first (%.3f)",
			stp, byName["largest-first"].MissRatio())
	}
	if stp > byName["random"].MissRatio()+0.01 {
		t.Errorf("STP^1.4 (%.3f) should beat random (%.3f)",
			stp, byName["random"].MissRatio())
	}
	out := RenderPolicyComparison(results, 731)
	if !strings.Contains(out, "OPT") || !strings.Contains(out, "person-min/day") {
		t.Errorf("render missing columns:\n%s", out)
	}
}

func TestCapacitySweepRender(t *testing.T) {
	p := pipeline(t)
	accs := p.Accesses()
	pts, err := migration.CapacitySweep(accs, []float64{0.005, 0.015, 0.05},
		func() migration.Policy { return migration.STP{K: 1.4} })
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSweep(pts)
	if !strings.Contains(out, "capacity") {
		t.Errorf("sweep render wrong:\n%s", out)
	}
	// Smith's observation rebuilt: a cache of ~1.5% of the store yields a
	// low miss ratio (he reported ~1%; our workload is burstier, so allow
	// more headroom).
	if pts[1].Result.MissRatio() > 0.5 {
		t.Errorf("1.5%% cache miss ratio = %.3f — far off Smith's regime",
			pts[1].Result.MissRatio())
	}
}

func TestWriteBehindReducesVisibleWriteLatency(t *testing.T) {
	base, err := Run(Config{Scale: 0.004, Seed: 9, Days: 120})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := Run(Config{Scale: 0.004, Seed: 9, Days: 120, WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	meanWrite := func(p *Pipeline) float64 {
		var sum float64
		var n int
		for _, r := range p.Records {
			if r.OK() && r.Op.String() == "write" {
				sum += r.Startup.Seconds()
				n++
			}
		}
		return sum / float64(n)
	}
	b, w := meanWrite(base), meanWrite(wb)
	if w >= b*0.8 {
		t.Errorf("write-behind mean write startup %.1fs vs baseline %.1fs — want a big cut", w, b)
	}
}
