module filemig

go 1.24
