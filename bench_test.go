package filemig

// The benchmark harness: one benchmark per table and figure of the paper,
// plus the DESIGN.md ablations. Each benchmark regenerates its table or
// figure from a shared, deterministically generated fixture and reports
// the headline reproduction metric alongside the timing (via
// b.ReportMetric), so `go test -bench=.` doubles as the experiment
// harness behind EXPERIMENTS.md.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"filemig/internal/core"
	"filemig/internal/device"
	"filemig/internal/dist"
	"filemig/internal/experiment"
	"filemig/internal/migration"
	"filemig/internal/mss"
	"filemig/internal/serve"
	"filemig/internal/stats"
	"filemig/internal/trace"
	"filemig/internal/units"
	"filemig/internal/workload"
)

// benchScale keeps the full suite laptop-sized (~9k files, ~35k requests
// over the full 731-day calendar). Raise to 1.0 to regenerate the paper's
// absolute counts.
const benchScale = 0.01

var benchFixture struct {
	sync.Once
	pipe *Pipeline
	accs []migration.Access
	err  error
}

func fixture(b *testing.B) (*Pipeline, []migration.Access) {
	benchFixture.Do(func() {
		benchFixture.pipe, benchFixture.err = Run(Config{Scale: benchScale, Seed: 1993})
		if benchFixture.err == nil {
			benchFixture.accs = benchFixture.pipe.Accesses()
		}
	})
	if benchFixture.err != nil {
		b.Fatalf("fixture: %v", benchFixture.err)
	}
	return benchFixture.pipe, benchFixture.accs
}

// analyze runs a fresh full analysis pass; the per-figure benchmarks call
// it so each measures the real cost of regenerating its result.
func analyze(p *Pipeline) *core.Report {
	a := core.New(core.Options{Start: p.Workload.Config.Start, Days: p.Workload.Config.Days})
	a.AddAll(p.Records)
	return a.Report()
}

// --- Tables ---

func BenchmarkTable1MediaComparison(b *testing.B) {
	var crossover units.Bytes
	for i := 0; i < b.N; i++ {
		rows := device.Table1()
		if len(rows) != 3 {
			b.Fatal("table 1 incomplete")
		}
		crossover = device.CrossoverSize(&device.OpticalJukebox, &device.SiloTape3480,
			units.Bytes(200*units.MB))
	}
	b.ReportMetric(crossover.MB(), "crossoverMB")
}

func BenchmarkTable2TraceCodec(b *testing.B) {
	p, _ := fixture(b)
	n := len(p.Records)
	if n > 20000 {
		n = 20000
	}
	recs := p.Records[:n]
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, recs); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := trace.ReadAll(bytes.NewReader(encoded))
		if err != nil || len(got) != n {
			b.Fatalf("decode: %v (%d records)", err, len(got))
		}
	}
	b.ReportMetric(float64(len(encoded))/float64(n), "bytes/rec")
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkTraceCodecBinary is BenchmarkTable2TraceCodec over the binary
// b1 format: same records, fewer bytes, faster decode. Compare the two
// benchmarks' MB/s, recs/s and bytes/rec.
func BenchmarkTraceCodecBinary(b *testing.B) {
	p, _ := fixture(b)
	n := len(p.Records)
	if n > 20000 {
		n = 20000
	}
	recs := p.Records[:n]
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, recs, trace.FormatBinary); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.SetBytes(int64(len(encoded)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := trace.ReadAll(bytes.NewReader(encoded))
		if err != nil || len(got) != n {
			b.Fatalf("decode: %v (%d records)", err, len(got))
		}
	}
	b.ReportMetric(float64(len(encoded))/float64(n), "bytes/rec")
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkStreamAnalyze is the tentpole benchmark for the streaming
// analysis path: the same encoded trace analysed by materializing every
// record first (slice) versus the sharded stream (serial and parallel).
// ReportAllocs shows total allocation; the liveRecs metric shows the
// memory shape — how many records each path holds at once: the whole
// trace for the slice path, at most (workers+2) shards for the stream.
func BenchmarkStreamAnalyze(b *testing.B) {
	p, _ := fixture(b)
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, p.Records, trace.FormatBinary); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	const shardDur = 28 * 24 * time.Hour
	const workers = 4
	// Records the stream path can hold at once: the largest window of
	// workers+2 consecutive shards.
	maxLive := maxShardWindow(p.Records, shardDur, workers+2)
	opts := core.Options{DedupWindow: workload.DedupWindow}
	check := func(b *testing.B, r *core.Report) {
		if r.Table3.GrandTotal == 0 {
			b.Fatal("empty report")
		}
	}
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		b.ReportMetric(float64(len(p.Records)), "liveRecs")
		for i := 0; i < b.N; i++ {
			recs, err := trace.ReadAll(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			a := core.New(opts)
			a.AddAll(recs)
			check(b, a.Report())
		}
	})
	for _, w := range []int{1, workers} {
		b.Run(fmt.Sprintf("stream-workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			live := maxLive
			if w == 1 {
				live = maxShardWindow(p.Records, shardDur, 1)
			}
			b.ReportMetric(float64(live), "liveRecs")
			for i := 0; i < b.N; i++ {
				src, err := trace.OpenStream(bytes.NewReader(encoded))
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.AnalyzeStream(context.Background(), core.StreamOptions{
					Options: opts, Workers: w, ShardDuration: shardDur}, src)
				if err != nil {
					b.Fatal(err)
				}
				check(b, rep)
			}
		})
	}
	// In-memory variants isolate the analysis itself from codec decode,
	// showing the parallel sharding win on its own.
	b.Run("inmem-slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.New(opts)
			a.AddAll(p.Records)
			check(b, a.Report())
		}
	})
	b.Run("inmem-stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := core.AnalyzeStream(context.Background(), core.StreamOptions{
				Options: opts, Workers: workers, ShardDuration: shardDur},
				trace.SliceStream(p.Records))
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep)
		}
	})
}

// BenchmarkB2Decode measures the b2 columnar codec next to
// BenchmarkTraceCodecBinary: the same records through the sequential
// whole-block reader and through the seekable index + parallel block
// decoder.
func BenchmarkB2Decode(b *testing.B) {
	p, _ := fixture(b)
	n := len(p.Records)
	if n > 20000 {
		n = 20000
	}
	recs := p.Records[:n]
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, recs, trace.FormatB2); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			got, err := trace.ReadAll(bytes.NewReader(encoded))
			if err != nil || len(got) != n {
				b.Fatalf("decode: %v (%d records)", err, len(got))
			}
		}
		b.ReportMetric(float64(len(encoded))/float64(n), "bytes/rec")
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	})
	b.Run("parallel-workers=4", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			f, err := trace.OpenB2File(bytes.NewReader(encoded), int64(len(encoded)))
			if err != nil {
				b.Fatal(err)
			}
			got, err := trace.Collect(f.Stream(4))
			if err != nil || len(got) != n {
				b.Fatalf("decode: %v (%d records)", err, len(got))
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	})
}

// BenchmarkStreamAnalyzeB2 is BenchmarkStreamAnalyze's trace re-encoded
// as b2: the same analysis fed by the sequential b2 stream reader, and
// by the index-seek path — shard cutting from the block index,
// parallel block decode, no record-level streaming at all. The
// indexseek variant is the headline: it must beat the committed b1
// stream-workers=4 baseline on both ns/op and allocs/op.
func BenchmarkStreamAnalyzeB2(b *testing.B) {
	p, _ := fixture(b)
	var buf bytes.Buffer
	if err := trace.WriteAllFormat(&buf, p.Records, trace.FormatB2); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	const shardDur = 28 * 24 * time.Hour
	const workers = 4
	opts := core.Options{DedupWindow: workload.DedupWindow}
	check := func(b *testing.B, r *core.Report) {
		if r.Table3.GrandTotal == 0 {
			b.Fatal("empty report")
		}
	}
	b.Run(fmt.Sprintf("stream-workers=%d", workers), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, err := trace.OpenStream(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := core.AnalyzeStream(context.Background(), core.StreamOptions{
				Options: opts, Workers: workers, ShardDuration: shardDur}, src)
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep)
		}
	})
	b.Run(fmt.Sprintf("indexseek-workers=%d", workers), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := trace.OpenB2File(bytes.NewReader(encoded), int64(len(encoded)))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := core.AnalyzeB2(context.Background(), core.B2Options{StreamOptions: core.StreamOptions{
				Options: opts, Workers: workers, ShardDuration: shardDur}}, f)
			if err != nil {
				b.Fatal(err)
			}
			check(b, rep)
		}
	})
}

// maxShardWindow reports the most records any n consecutive time shards
// of the given width hold.
func maxShardWindow(recs []trace.Record, shard time.Duration, n int) int {
	if len(recs) == 0 {
		return 0
	}
	origin := recs[0].Start.Truncate(24 * time.Hour)
	counts := map[int64]int{}
	var last int64
	for i := range recs {
		k := int64(recs[i].Start.Sub(origin) / shard)
		counts[k]++
		if k > last {
			last = k
		}
	}
	best := 0
	for k := int64(0); k <= last; k++ {
		sum := 0
		for j := k; j < k+int64(n) && j <= last; j++ {
			sum += counts[j]
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// BenchmarkSnapshotRoundTrip measures the s1 snapshot codec on the
// fixture workload: serializing a journaled analysis, and merging two
// snapshot halves back into one analysis (decode + journal replay).
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	p, _ := fixture(b)
	journaled := func(recs []trace.Record) *core.Analysis {
		a := core.New(core.Options{Journal: true})
		a.AddAll(recs)
		return a
	}
	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		a := journaled(p.Records)
		var size int64
		for i := 0; i < b.N; i++ {
			var n countingWriter
			if err := a.WriteSnapshot(&n); err != nil {
				b.Fatal(err)
			}
			size = int64(n)
		}
		b.SetBytes(size)
		b.ReportMetric(float64(size)/float64(len(p.Records)), "bytes/rec")
	})
	b.Run("merge", func(b *testing.B) {
		b.ReportAllocs()
		var h1, h2 bytes.Buffer
		if err := journaled(p.Records[:len(p.Records)/2]).WriteSnapshot(&h1); err != nil {
			b.Fatal(err)
		}
		if err := journaled(p.Records[len(p.Records)/2:]).WriteSnapshot(&h2); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(h1.Len() + h2.Len()))
		for i := 0; i < b.N; i++ {
			a, err := core.MergeSnapshots(bytes.NewReader(h1.Bytes()), bytes.NewReader(h2.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if a == nil {
				b.Fatal("nil analysis")
			}
		}
	})
}

// countingWriter discards output while counting it, so encode
// benchmarks measure the codec rather than buffer growth.
type countingWriter int64

func (c *countingWriter) Write(b []byte) (int, error) {
	*c += countingWriter(len(b))
	return len(b), nil
}

// BenchmarkGenerateStream compares materializing generation against the
// lazy plan-merge stream feeding the analysis directly — the RunStream
// pipeline against Run with SkipSimulation.
func BenchmarkGenerateStream(b *testing.B) {
	cfg := Config{Scale: 0.005, Seed: 1993, SkipSimulation: true}
	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if p.Report.Table3.GrandTotal == 0 {
				b.Fatal("empty report")
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := RunStream(StreamConfig{Config: cfg, Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Table3.GrandTotal == 0 {
				b.Fatal("empty report")
			}
		}
	})
}

func BenchmarkTable3OverallStats(b *testing.B) {
	p, _ := fixture(b)
	var readShare float64
	for i := 0; i < b.N; i++ {
		r := analyze(p)
		total := r.Table3.Total()
		readShare = float64(r.Table3.OpTotal(trace.Read).Refs) / float64(total.Refs)
	}
	b.ReportMetric(100*readShare, "readShare%") // paper: 66%
}

func BenchmarkTable4FileStore(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var avgMB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avgMB = r.Table4.AvgFileSize.MB()
		_ = core.RenderTable4(r.Table4)
	}
	b.ReportMetric(avgMB, "avgFileMB") // paper: 25 MB
}

// --- Figures ---

func BenchmarkFigure1Pyramid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := device.HierarchyInvariant(device.Hierarchy()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(mss.Topology()) < 5 {
			b.Fatal("topology incomplete")
		}
	}
}

func BenchmarkFigure3LatencyCDF(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var diskMedian float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.RenderFigure3(r)
		diskMedian = r.Figure3[device.ClassDisk].Median()
	}
	b.ReportMetric(diskMedian, "diskMedianSec") // paper: 4 s
}

func BenchmarkFigure4HourOfDay(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var swing float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak, trough := 0.0, 1e18
		for h := 0; h < 24; h++ {
			rate := r.Figure4.ReadRate(h)
			if rate > peak {
				peak = rate
			}
			if rate < trough {
				trough = rate
			}
		}
		swing = peak / trough
	}
	b.ReportMetric(swing, "readPeakTrough") // strongly diurnal
}

func BenchmarkFigure5DayOfWeek(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var dip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weekday := (r.Figure5.ReadRate(2) + r.Figure5.ReadRate(3) + r.Figure5.ReadRate(4)) / 3
		weekend := (r.Figure5.ReadRate(0) + r.Figure5.ReadRate(6)) / 2
		dip = weekend / weekday
	}
	b.ReportMetric(dip, "weekendOverWeekday") // paper: well under 1
}

func BenchmarkFigure6WeeklyTrend(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var growth float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weeks := r.Figure6.Weeks
		q := len(weeks) / 4
		first, last := 0.0, 0.0
		for j := 0; j < q; j++ {
			first += weeks[j].ReadGBh
			last += weeks[len(weeks)-1-j].ReadGBh
		}
		growth = last / first
	}
	b.ReportMetric(growth, "readGrowth2y") // paper: roughly doubles
}

func BenchmarkFigure7Interarrival(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var knee float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knee = r.Figure7.P(10)
	}
	b.ReportMetric(100*knee, "under10s%") // paper: 90% at full scale
}

func BenchmarkFigure8RefCounts(b *testing.B) {
	p, _ := fixture(b)
	var once float64
	for i := 0; i < b.N; i++ {
		r := analyze(p)
		once = r.Figure8.ExactlyOnceFrac
	}
	b.ReportMetric(100*once, "accessedOnce%") // paper: 57%
}

func BenchmarkFigure9FileInterref(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var underDay float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		underDay = r.Figure9.P(1)
	}
	b.ReportMetric(100*underDay, "underOneDay%") // paper: 70%
}

func BenchmarkFigure10DynamicSizes(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var under1MB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, fw := r.Figure10.FilesRead, r.Figure10.FilesWritten
		under1MB = (fr.P(1e6)*float64(fr.N()) + fw.P(1e6)*float64(fw.N())) /
			float64(fr.N()+fw.N())
	}
	b.ReportMetric(100*under1MB, "requestsUnder1MB%") // paper: 40%
}

func BenchmarkFigure11StaticSizes(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var under3MB float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		under3MB = r.Figure11.Files.P(3e6)
	}
	b.ReportMetric(100*under3MB, "filesUnder3MB%") // paper: ~50%
}

func BenchmarkFigure12DirectorySizes(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var small float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		small = r.Figure12.Dirs.P(10)
	}
	b.ReportMetric(100*small, "dirsUnder10Files%") // paper: 90%
}

// --- Section-level results and ablations ---

func BenchmarkPeriodicityDetection(b *testing.B) {
	p, _ := fixture(b)
	r := analyze(p)
	var day float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		periods := r.DominantPeriods(2)
		if len(periods) > 0 {
			day = periods[0]
		}
	}
	b.ReportMetric(day, "topPeriodHours") // paper: 24
}

func BenchmarkCoalescingSavings(b *testing.B) {
	p, _ := fixture(b)
	b.ReportAllocs()
	var frac float64
	c := migration.NewCoalescer(nil)
	for i := 0; i < b.N; i++ {
		frac = c.Run(p.Records, DedupWindow).SavableFraction()
	}
	b.ReportMetric(100*frac, "savable%") // paper: ~33%
}

func BenchmarkCoalescingWindowSweep(b *testing.B) {
	p, _ := fixture(b)
	windows := []time.Duration{time.Hour, 4 * time.Hour, 8 * time.Hour, 24 * time.Hour}
	for i := 0; i < b.N; i++ {
		res := migration.CoalesceSweep(p.Records, windows)
		if len(res) != len(windows) {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkPolicyComparison(b *testing.B) {
	_, accs := fixture(b)
	capacity := migration.TotalReferencedBytes(accs) / 50
	b.ReportAllocs()
	var stpMiss float64
	for i := 0; i < b.N; i++ {
		results, err := migration.ComparePolicies(accs, capacity, StandardPolicies(accs))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Policy == "STP^1.4" {
				stpMiss = r.MissRatio()
			}
		}
	}
	b.ReportMetric(100*stpMiss, "stpMiss%")
}

// BenchmarkPolicyComparisonModern races the paper's nine-policy set
// against the five post-1993 policies on the same fixture and capacity:
// the modern set's stateful bookkeeping (ARC ghost lists, LRU-K
// histories, greedy-dual clocks, STP fits) must hold the same
// ~0 allocs/record steady state as the classic set.
func BenchmarkPolicyComparisonModern(b *testing.B) {
	_, accs := fixture(b)
	capacity := migration.TotalReferencedBytes(accs) / 50
	sets := []struct {
		name  string
		build func([]migration.Access) []migration.Policy
	}{
		{"classic", StandardPolicies},
		{"modern", ModernPolicies},
	}
	for _, set := range sets {
		b.Run(set.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := migration.ComparePolicies(accs, capacity, set.build(accs)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolicyComparisonSerialScan is the pre-refactor baseline for
// BenchmarkPolicyComparison: one worker and every policy forced onto the
// scan path.
func BenchmarkPolicyComparisonSerialScan(b *testing.B) {
	_, accs := fixture(b)
	capacity := migration.TotalReferencedBytes(accs) / 50
	for i := 0; i < b.N; i++ {
		policies := StandardPolicies(accs)
		for j, p := range policies {
			policies[j] = migration.ScanOnly{P: p}
		}
		if _, err := migration.ComparePoliciesWorkers(accs, capacity, policies, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapacitySweep(b *testing.B) {
	_, accs := fixture(b)
	fractions := []float64{0.005, 0.015, 0.05}
	var missAt15 float64
	for i := 0; i < b.N; i++ {
		pts, err := migration.CapacitySweep(accs, fractions,
			func() migration.Policy { return migration.STP{K: 1.4} })
		if err != nil {
			b.Fatal(err)
		}
		missAt15 = pts[1].Result.MissRatio()
	}
	b.ReportMetric(100*missAt15, "missAt1.5%Cache%") // Smith: ~1% at NCAR rates
}

// BenchmarkCapacitySweepSerial is the serial baseline for
// BenchmarkCapacitySweep (STP replays are scan-path either way).
func BenchmarkCapacitySweepSerial(b *testing.B) {
	_, accs := fixture(b)
	fractions := []float64{0.005, 0.015, 0.05}
	for i := 0; i < b.N; i++ {
		if _, err := migration.CapacitySweepWorkers(accs, fractions,
			func() migration.Policy { return migration.STP{K: 1.4} }, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvictionHeap measures the tentpole directly: the same LRU
// replay with the indexed eviction heap versus the forced scan fallback.
func BenchmarkEvictionHeap(b *testing.B) {
	_, accs := fixture(b)
	capacity := migration.TotalReferencedBytes(accs) / 50
	run := func(b *testing.B, p migration.Policy) {
		for i := 0; i < b.N; i++ {
			c, err := migration.NewCache(migration.CacheConfig{Capacity: capacity, Policy: p})
			if err != nil {
				b.Fatal(err)
			}
			c.Replay(accs)
		}
	}
	b.Run("heap", func(b *testing.B) { run(b, migration.LRU{}) })
	b.Run("scan", func(b *testing.B) { run(b, migration.ScanOnly{P: migration.LRU{}}) })
}

func BenchmarkSTPExponentSweep(b *testing.B) {
	_, accs := fixture(b)
	capacity := migration.TotalReferencedBytes(accs) / 50
	ks := []float64{0, 0.5, 1.0, 1.4, 2.0}
	var best float64
	for i := 0; i < b.N; i++ {
		pts, err := migration.STPExponentSweep(accs, capacity, ks)
		if err != nil {
			b.Fatal(err)
		}
		if bp, ok := migration.BestExponent(pts); ok {
			best = bp.K
		}
	}
	b.ReportMetric(best, "bestExponent") // Smith: 1.4 region
}

func BenchmarkPlacementThresholdSweep(b *testing.B) {
	_, accs := fixture(b)
	thresholds := []units.Bytes{
		units.Bytes(units.MB), units.Bytes(10 * units.MB),
		units.Bytes(30 * units.MB), units.Bytes(100 * units.MB),
	}
	capacity := migration.TotalReferencedBytes(accs) / 50
	var bestMB float64
	for i := 0; i < b.N; i++ {
		res, err := migration.PlacementSweep(accs, thresholds, capacity,
			30*time.Second, 104*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		best := res[0]
		for _, r := range res[1:] {
			if r.MeanFirstByte < best.MeanFirstByte {
				best = r
			}
		}
		bestMB = best.Threshold.MB()
	}
	b.ReportMetric(bestMB, "bestThresholdMB") // NCAR used 30 MB
}

func BenchmarkWriteBehind(b *testing.B) {
	p, _ := fixture(b)
	n := len(p.Workload.Records)
	if n > 15000 {
		n = 15000
	}
	recs := p.Workload.Records[:n]
	var cut float64
	for i := 0; i < b.N; i++ {
		base := meanWriteStartup(b, recs, false, int64(i))
		wb := meanWriteStartup(b, recs, true, int64(i))
		cut = wb / base
	}
	b.ReportMetric(cut, "writeLatencyRatio") // well under 1
}

func meanWriteStartup(b *testing.B, recs []trace.Record, writeBehind bool, seed int64) float64 {
	cfg := mss.DefaultConfig(seed)
	cfg.WriteBehind = writeBehind
	sim := mss.NewSimulator(cfg)
	out, err := sim.Replay(recs)
	if err != nil {
		b.Fatal(err)
	}
	var m stats.Moments
	for _, r := range out {
		if r.OK() && r.Op == trace.Write {
			m.Add(r.Startup.Seconds())
		}
	}
	return m.Mean()
}

func BenchmarkBurstPackingAblation(b *testing.B) {
	off := false
	flat, err := Run(Config{Scale: 0.003, Seed: 4, SkipSimulation: true, Bursts: &off})
	if err != nil {
		b.Fatal(err)
	}
	p, _ := fixture(b)
	var delta float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knee := func(recs []trace.Record) float64 {
			var c stats.CDF
			for j := 1; j < len(recs); j++ {
				c.Add(recs[j].Start.Sub(recs[j-1].Start).Seconds())
			}
			return c.P(10)
		}
		delta = knee(p.Records) - knee(flat.Records)
	}
	b.ReportMetric(100*delta, "burstKneeGain%")
}

// --- Extension features (paper §5.1.1, §5.4, §6, reference [4]) ---

func BenchmarkCutThrough(b *testing.B) {
	p, _ := fixture(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		// 1 MB/s application consumption, the paper's premise that apps
		// read slower than the MSS delivers.
		speedup = mss.CutThroughReport(p.Records, 1e6).Speedup()
	}
	b.ReportMetric(speedup, "perceivedSpeedup")
}

func BenchmarkTapeStriping(b *testing.B) {
	var crossoverMB float64
	for i := 0; i < b.N; i++ {
		x := device.StripeCrossover(device.SiloTape3480, 4, units.Bytes(200*units.MB))
		crossoverMB = x.MB()
	}
	b.ReportMetric(crossoverMB, "stripeWinAboveMB")
}

func BenchmarkOpticalSmallFiles(b *testing.B) {
	p, _ := fixture(b)
	// Small-file (disk-class) requests only, §5.4's candidate for an
	// optical jukebox.
	small := trace.Filter(p.Workload.Records, trace.OKOnly(), trace.ByDevice(device.ClassDisk))
	if len(small) > 8000 {
		small = small[:8000]
	}
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := mss.DefaultConfig(int64(i))
		base := mss.NewSimulator(cfg)
		baseOut, err := base.Replay(small)
		if err != nil {
			b.Fatal(err)
		}
		cfg2 := mss.DefaultConfig(int64(i))
		cfg2.SmallOnOptical = true
		opt := mss.NewSimulator(cfg2)
		optOut, err := opt.Replay(small)
		if err != nil {
			b.Fatal(err)
		}
		var bm, om stats.Moments
		for j := range baseOut {
			bm.Add(baseOut[j].Startup.Seconds())
			om.Add(optOut[j].Startup.Seconds())
		}
		ratio = om.Mean() / bm.Mean()
	}
	b.ReportMetric(ratio, "opticalOverDiskLatency")
}

func BenchmarkStagingWriteBehind(b *testing.B) {
	_, accs := fixture(b)
	deduped := migration.DedupAccesses(accs, DedupWindow)
	capacity := migration.TotalReferencedBytes(accs) / 50
	var savedMin float64
	for i := 0; i < b.N; i++ {
		eager, lazy, err := migration.CompareWriteBehind(deduped, capacity, 2e6, 30*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		savedMin = (lazy.StallTime - eager.StallTime).Minutes()
	}
	b.ReportMetric(savedMin, "stallSavedMin")
}

// --- Substrate throughput ---

func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.Generate(workload.DefaultConfig(0.002, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkMSSReplay(b *testing.B) {
	p, _ := fixture(b)
	n := len(p.Workload.Records)
	if n > 15000 {
		n = 15000
	}
	recs := p.Workload.Records[:n]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := mss.NewSimulator(mss.DefaultConfig(int64(i)))
		if _, err := sim.Replay(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedGrid prices the coordinator/worker fan-out
// against the in-process grid runner on the same 18-cell quickgrid
// plan: "inprocess" is experiment.RunPlan with a local pool,
// "distributed-workers=2" serves every cell over loopback HTTP to two
// in-process workers — leases, framing, journal-less claim/result
// round-trips and the ordered merge included. Both assemble the
// identical manifest; the delta is the fan-out tax documented in
// docs/distributed.md.
func BenchmarkDistributedGrid(b *testing.B) {
	raw, err := os.ReadFile(filepath.Join("testdata", "quickgrid.json"))
	if err != nil {
		b.Fatal(err)
	}
	spec, err := experiment.Parse(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("inprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := experiment.BuildPlan(spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := experiment.RunPlan(context.Background(), plan); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("distributed-workers=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := experiment.BuildPlan(spec)
			if err != nil {
				b.Fatal(err)
			}
			g, err := dist.NewGridCoordinator(plan, dist.Options{
				Lease: 30 * time.Second, Now: time.Now, Seed: int64(i),
				Linger: 100 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			base := "http://" + ln.Addr().String()
			ctx := context.Background()
			served := make(chan error, 1)
			go func() { served <- g.Serve(ctx, ln) }()
			workers := make(chan error, 2)
			for w := 0; w < 2; w++ {
				go func(seed int64) {
					workers <- dist.RunWorker(ctx, base, dist.WorkerOptions{
						Seed: seed, Poll: 5 * time.Millisecond,
					})
				}(int64(i*2 + w + 1))
			}
			if err := <-served; err != nil {
				b.Fatal(err)
			}
			for w := 0; w < 2; w++ {
				if err := <-workers; err != nil {
					b.Fatal(err)
				}
			}
			if _, err := g.Manifest(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMigdIngest measures the live daemon's hot path: a client's
// pre-framed b1 batches through frame decode + validation + segment
// observe (the work POST /v1/ingest/batch does per request, minus HTTP),
// and the journal-merge fold behind GET /v1/report over the resulting
// segments. Sustained records/sec and allocations per record ride along
// as b.ReportMetric metrics.
func BenchmarkMigdIngest(b *testing.B) {
	p, _ := fixture(b)
	recs := p.Records
	const batchLen = 1000
	var frames [][]byte
	for i := 0; i < len(recs); i += batchLen {
		j := i + batchLen
		if j > len(recs) {
			j = len(recs)
		}
		var buf bytes.Buffer
		if err := trace.WriteAllFormat(&buf, recs[i:j], trace.FormatBinary); err != nil {
			b.Fatal(err)
		}
		frames = append(frames, dist.EncodeFrame(buf.Bytes()))
	}
	now := func() time.Time {
		return p.Workload.Config.Start.AddDate(0, 0, p.Workload.Config.Days)
	}
	newServer := func() *serve.Server {
		s, err := serve.NewServer(serve.Config{
			Opts: core.Options{DedupWindow: workload.DedupWindow},
			Now:  now,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("ingest", func(b *testing.B) {
		b.ReportAllocs()
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := newServer()
			for _, f := range frames {
				batch, err := serve.DecodeIngestFrame(f)
				if err != nil {
					b.Fatal(err)
				}
				s.Ingest(batch)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		total := float64(b.N) * float64(len(recs))
		b.ReportMetric(total/b.Elapsed().Seconds(), "recs/s")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/total, "allocs/rec")
	})
	// The fold is the daemon's own contribution to GET /v1/report —
	// rendering the folded state costs the same as offline (dominated by
	// the Periodogram, measured by BenchmarkPeriodicityDetection).
	b.Run("fold", func(b *testing.B) {
		s := newServer()
		for _, f := range frames {
			batch, err := serve.DecodeIngestFrame(f)
			if err != nil {
				b.Fatal(err)
			}
			s.Ingest(batch)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := s.Accumulate()
			if err != nil {
				b.Fatal(err)
			}
			if m.Report().Table3.GrandTotal == 0 {
				b.Fatal("empty report")
			}
		}
	})
}
