package filemig_test

import (
	"fmt"
	"log"

	"filemig"
)

// ExampleRun executes the whole pipeline — generate, simulate, analyse —
// at a tiny scale and picks two headline numbers out of the report.
// Seeded runs are deterministic, so the output is stable.
func ExampleRun() {
	p, err := filemig.Run(filemig.Config{Scale: 0.002, Seed: 1, Days: 30})
	if err != nil {
		log.Fatal(err)
	}
	t3 := p.Report.Table3
	fmt.Printf("good references: %d\n", t3.TotalRefs)
	fmt.Printf("error references: %d of %d\n", t3.ErrorRefs, t3.GrandTotal)
	// Output:
	// good references: 4466
	// error references: 223 of 4689
}

// ExampleRunStream is the bounded-memory variant: records flow from the
// generator straight into the sharded analysis without ever
// materializing the trace, and the report matches Run's (modulo the
// skipped simulation).
func ExampleRunStream() {
	rep, err := filemig.RunStream(filemig.StreamConfig{
		Config:  filemig.Config{Scale: 0.002, Seed: 1, Days: 30},
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good references: %d\n", rep.Table3.TotalRefs)
	// Output:
	// good references: 4466
}
