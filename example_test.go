package filemig_test

import (
	"bytes"
	"fmt"
	"log"

	"filemig"
	"filemig/internal/trace"
)

// ExampleRun executes the whole pipeline — generate, simulate, analyse —
// at a tiny scale and picks two headline numbers out of the report.
// Seeded runs are deterministic, so the output is stable.
func ExampleRun() {
	p, err := filemig.Run(filemig.Config{Scale: 0.002, Seed: 1, Days: 30})
	if err != nil {
		log.Fatal(err)
	}
	t3 := p.Report.Table3
	fmt.Printf("good references: %d\n", t3.TotalRefs)
	fmt.Printf("error references: %d of %d\n", t3.ErrorRefs, t3.GrandTotal)
	// Output:
	// good references: 4466
	// error references: 223 of 4689
}

// ExampleScenarios lists the named workload scenario library that
// experiment specs select from.
func ExampleScenarios() {
	for _, s := range filemig.Scenarios() {
		fmt.Println(s.Name)
	}
	// Output:
	// paper-1993
	// diurnal-interactive
	// checkpoint-restart
	// archive-coldscan
}

// ExampleRunExperiment executes a small declarative grid — one scenario,
// two policies, two capacities — and reads one figure of merit out of
// the deterministic manifest.
func ExampleRunExperiment() {
	m, err := filemig.RunExperiment(&filemig.ExperimentSpec{
		Name:       "example",
		Scenarios:  []string{"paper-1993"},
		Scale:      0.002,
		Seed:       1,
		Days:       30,
		Policies:   []string{"stp:1.4", "lru"},
		Capacities: []float64{0.02, 0.10},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d cells\n", m.Grid.Cells)
	sr := m.Scenarios[0]
	for _, row := range sr.Policies {
		for _, cell := range row.Cells {
			fmt.Printf("%s @ %g%%: %.1f%% read misses\n",
				row.Policy, 100*cell.CapacityFraction, 100*cell.MissRatio)
		}
	}
	// Output:
	// grid: 4 cells
	// STP^1.4 @ 2%: 42.7% read misses
	// STP^1.4 @ 10%: 24.6% read misses
	// LRU @ 2%: 66.3% read misses
	// LRU @ 10%: 26.6% read misses
}

// ExampleSaveSnapshot analyses an encoded trace into an s1 snapshot —
// the unit of work one node contributes to a distributed analysis. The
// snapshot carries the full analysis state in a fraction of the trace's
// bytes (paths are interned once; per-record state is varint deltas).
func ExampleSaveSnapshot() {
	p, err := filemig.Run(filemig.Config{Scale: 0.002, Seed: 1, Days: 30})
	if err != nil {
		log.Fatal(err)
	}
	var encoded bytes.Buffer
	if err := trace.WriteAllFormat(&encoded, p.Records, trace.FormatBinary); err != nil {
		log.Fatal(err)
	}
	traceBytes := encoded.Len()
	var snap bytes.Buffer
	if err := filemig.SaveSnapshot(&snap, &encoded); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot smaller than the trace: %v\n", snap.Len() < traceBytes)
	// Output:
	// snapshot smaller than the trace: true
}

// ExampleMergeSnapshots is the reduce step: two trace slices analysed
// independently — on different machines, in real deployments — merge
// into the same report a single process computes over the whole trace
// (compare ExampleRun's counts).
func ExampleMergeSnapshots() {
	p, err := filemig.Run(filemig.Config{Scale: 0.002, Seed: 1, Days: 30})
	if err != nil {
		log.Fatal(err)
	}
	var s1, s2 bytes.Buffer
	for _, half := range []struct {
		dst  *bytes.Buffer
		recs []trace.Record
	}{
		{&s1, p.Records[:len(p.Records)/2]},
		{&s2, p.Records[len(p.Records)/2:]},
	} {
		var enc bytes.Buffer
		if err := trace.WriteAllFormat(&enc, half.recs, trace.FormatBinary); err != nil {
			log.Fatal(err)
		}
		if err := filemig.SaveSnapshot(half.dst, &enc); err != nil {
			log.Fatal(err)
		}
	}
	merged, err := filemig.MergeSnapshots(&s1, &s2)
	if err != nil {
		log.Fatal(err)
	}
	t3 := merged.Report.Table3
	fmt.Printf("good references: %d\n", t3.TotalRefs)
	fmt.Printf("error references: %d of %d\n", t3.ErrorRefs, t3.GrandTotal)
	// Output:
	// good references: 4466
	// error references: 223 of 4689
}

// ExampleRunStream is the bounded-memory variant: records flow from the
// generator straight into the sharded analysis without ever
// materializing the trace, and the report matches Run's (modulo the
// skipped simulation).
func ExampleRunStream() {
	rep, err := filemig.RunStream(filemig.StreamConfig{
		Config:  filemig.Config{Scale: 0.002, Seed: 1, Days: 30},
		Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("good references: %d\n", rep.Table3.TotalRefs)
	// Output:
	// good references: 4466
}
