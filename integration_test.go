package filemig

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"filemig/internal/core"
	"filemig/internal/migration"
	"filemig/internal/mss"
	"filemig/internal/trace"
)

// TestPipelinePersistsThroughCodec is the full §4 loop: simulate, encode
// to the compact ASCII format, decode, re-analyse — the decoded trace
// must yield the same Table 3 as the in-memory one (start times truncate
// to whole seconds, which cannot move a record across an hour boundary
// often enough to matter here, and never changes counts or sizes).
func TestPipelinePersistsThroughCodec(t *testing.T) {
	p := pipeline(t)

	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, p.Records); err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(decoded) != len(p.Records) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(p.Records))
	}

	a := core.New(core.Options{Start: p.Workload.Config.Start, Days: p.Workload.Config.Days})
	a.AddAll(decoded)
	rep := a.Report()

	want := p.Report.Table3
	got := rep.Table3
	if got.TotalRefs != want.TotalRefs || got.ErrorRefs != want.ErrorRefs {
		t.Errorf("reference counts changed through codec: %d/%d vs %d/%d",
			got.TotalRefs, got.ErrorRefs, want.TotalRefs, want.ErrorRefs)
	}
	if got.Total().Bytes != want.Total().Bytes {
		t.Errorf("byte totals changed through codec: %v vs %v",
			got.Total().Bytes, want.Total().Bytes)
	}
	// Latency means survive at one-second resolution.
	g := got.Total().MeanLatency.Round(time.Second)
	w := want.Total().MeanLatency.Round(time.Second)
	if d := g - w; d < -time.Second || d > time.Second {
		t.Errorf("mean latency moved %v through the codec", d)
	}
}

// TestRawLogPipeline exercises the other §4 direction: verbose system
// log → converter → analysis, as the authors' preprocessing did.
func TestRawLogPipeline(t *testing.T) {
	p := pipeline(t)
	n := len(p.Records)
	if n > 3000 {
		n = 3000
	}
	recs := p.Records[:n]
	var raw bytes.Buffer
	if err := trace.WriteRawLog(&raw, recs); err != nil {
		t.Fatal(err)
	}
	converted, skipped, err := trace.ConvertRawLog(&raw)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("converter skipped %d lines", skipped)
	}
	if len(converted) != n {
		t.Fatalf("converted %d records, want %d", len(converted), n)
	}
	var okWant, okGot int
	for i := range recs {
		if recs[i].OK() {
			okWant++
		}
		if converted[i].OK() {
			okGot++
		}
	}
	if okGot != okWant {
		t.Errorf("error classification changed: %d vs %d OK records", okGot, okWant)
	}
}

// TestCoalesceMonotonicWindows is a property test over the real trace:
// widening the window can only save more.
func TestCoalesceMonotonicWindows(t *testing.T) {
	p := pipeline(t)
	recs := p.Records
	if len(recs) > 8000 {
		recs = recs[:8000]
	}
	f := func(h1, h2 uint8) bool {
		a := time.Duration(h1%25) * time.Hour
		b := time.Duration(h2%25) * time.Hour
		if a > b {
			a, b = b, a
		}
		return migration.Coalesce(recs, a).Savable <= migration.Coalesce(recs, b).Savable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDedupNeverIncreases is a property test: the §5.3 dedup of an access
// string never grows it, and deduping twice is idempotent.
func TestDedupNeverIncreases(t *testing.T) {
	p := pipeline(t)
	accs := p.Accesses()
	if len(accs) > 10000 {
		accs = accs[:10000]
	}
	once := migration.DedupAccesses(accs, DedupWindow)
	if len(once) > len(accs) {
		t.Fatalf("dedup grew the string: %d > %d", len(once), len(accs))
	}
	twice := migration.DedupAccesses(once, DedupWindow)
	if len(twice) != len(once) {
		t.Errorf("dedup not idempotent: %d vs %d", len(twice), len(once))
	}
}

// TestStagingOnRealTrace runs the §6 staging comparison on the real
// generated workload rather than a synthetic string.
func TestStagingOnRealTrace(t *testing.T) {
	p := pipeline(t)
	accs := migration.DedupAccesses(p.Accesses(), DedupWindow)
	capacity := migration.TotalReferencedBytes(accs) / 50
	eager, lazy, err := migration.CompareWriteBehind(accs, capacity, 2e6, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if eager.StallTime > lazy.StallTime {
		t.Errorf("eager stall %v exceeds lazy stall %v", eager.StallTime, lazy.StallTime)
	}
	if eager.CopiedBytes == 0 {
		t.Error("eager manager copied nothing to tape")
	}
	if eager.Reads != lazy.Reads || eager.Writes != lazy.Writes {
		t.Error("managers disagree on the access counts")
	}
}

// TestCutThroughOnRealTrace checks §5.1.1's premise end to end: with an
// application consuming slower than the MSS delivers, cut-through always
// helps and never hurts.
func TestCutThroughOnRealTrace(t *testing.T) {
	p := pipeline(t)
	for _, rate := range []float64{0.5e6, 1e6, 4e6} {
		res := mss.CutThroughReport(p.Records, rate)
		if res.CutThroughMean > res.BaselineMean {
			t.Errorf("rate %v: cut-through (%v) worse than baseline (%v)",
				rate, res.CutThroughMean, res.BaselineMean)
		}
		if res.Speedup() < 1 {
			t.Errorf("rate %v: speedup %v < 1", rate, res.Speedup())
		}
	}
}
